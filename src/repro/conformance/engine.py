"""The differential grid fuzzer: every configuration vs the reference.

A *case* is one :class:`~repro.conformance.generators.World` run under
one :class:`CaseConfig` and diffed against the pure-Python reference run
of the *same* structural configuration.  Only the implementation axes —
``backend``, ``fusion_backend``, ``executor`` — flip between candidate
and reference; the structural axes (method, partitioning, reduce
topology, epoch size, ordering, round count) are held fixed, because
changing them legitimately changes float association or early-stop
scores.  What must never change is pinned by the configuration's
*contract*:

``bitexact``
    ``PairDecision``/``PairBookkeeping`` dicts compared with ``==`` —
    exact float equality on scores and posteriors — plus the full
    :class:`~repro.core.result.CostCounter` triple.  Applies to the
    epoch-batched bound scans (serial), to every pure-Python candidate
    (executors must not change bits), and to ``scan`` mode outright.

``numeric``
    Identical decision key sets, identical ``copying``/``early`` flags
    and tie-broken truths, scores and posteriors within ``1e-9``
    (float re-association error of the vectorized kernels), and the
    structural cost counters (`values_examined`, `pairs_considered`)
    exactly equal.  One carve-out: a fused truth whose *reference*
    top-2 probability margin is itself below the tolerance may resolve
    to either value — sub-tolerance near-ties are the one place where
    re-association legitimately reaches the decision surface
    (structural ties stay bit-equal in both backends and break
    identically).

Multi-round fusion cases are checked in **lockstep**, not end-to-end:
iterating the loop on drifted inputs is chaotic on ill-conditioned
worlds (a sub-1e-9 absolute drift in a ``p ~ 1e-14`` value probability
is a large *relative* drift, which ``ln`` turns into an O(1) score
shift, which flips *which* pairs terminate early — every downstream
number then differs defensibly).  Instead the engine advances the
*candidate's* trajectory and, at every round, feeds the bit-identical
current state to both implementations: candidate vs reference
detection under the full single-round contract above (bit-exact for
the bound family — ``PairBookkeeping``-bearing INCREMENTAL rounds
included), candidate vs reference ACCU/ACCUCOPY updates at
:data:`NUMERIC_TOL`, and tie-aware fused truths.  Local-step
conformance is strictly stronger than trajectory-end comparison and
stays well-posed on every world.

On divergence the world is greedily shrunk (drop sources, then items,
then single claims, re-checking the divergence after each candidate cut)
and serialized into the regression corpus
(:mod:`repro.conformance.corpus`), which the tier-1 suite replays
forever.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import asdict, dataclass, field, replace
from typing import Callable, Sequence

from ..core import (
    METHODS,
    PAIR_LAYOUTS,
    CopyParams,
    IncrementalDetector,
    SingleRoundDetector,
    detect,
    scan_with_bounds,
)
from ..core.index import EntryOrdering
from ..core.result import DetectionResult
from ..fusion.pipeline import FUSION_METHOD_VALUES
from .generators import World, generate_world

#: Absolute tolerance of the ``numeric`` contract — the property-tested
#: re-association bound of the vectorized kernels.
NUMERIC_TOL = 1e-9


#: Methods valid per mode.
SCAN_METHODS = ("bound", "bound+", "hybrid")
FUSION_METHODS = METHODS + ("incremental", "none")

_ORDERINGS = {o.value: o for o in EntryOrdering}


@dataclass(frozen=True)
class CaseConfig:
    """One point of the (method x backend x executor x ...) grid.

    ``mode`` selects the comparison surface: ``"detect"`` diffs a single
    :func:`~repro.core.detect` round (or the parallel engine when
    ``n_partitions > 1``), ``"scan"`` diffs a raw
    :func:`~repro.core.scan_with_bounds` outcome including its
    :class:`~repro.core.PairBookkeeping`, and ``"fusion"`` diffs a
    pinned-round :func:`~repro.fusion.run_fusion` (multi-round
    incremental fusion included).
    """

    mode: str
    method: str
    backend: str = "numpy"
    fusion_backend: str | None = None
    executor: str = "serial"
    n_partitions: int = 1
    reduce: str = "flat"
    partition_by: str = "entries"
    epoch_size: int | None = None
    ordering: str = "by_contribution"
    hybrid_threshold: int | None = None
    band: tuple[float, float] | None = None
    rounds: int = 4
    pair_layout: str = "auto"
    #: Truth-finding update under test in ``fusion`` mode: ``"accu"``
    #: (the default softmax) or ``"ds"`` (Dempster-Shafer — both sides
    #: run the DS combination and the per-item conflict dicts are part
    #: of the compared surface).
    fusion_method: str = "accu"

    def __post_init__(self) -> None:
        valid = {
            "detect": METHODS,
            "scan": SCAN_METHODS,
            "fusion": FUSION_METHODS,
        }
        if self.mode not in valid:
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.method not in valid[self.mode]:
            raise ValueError(
                f"method {self.method!r} invalid for mode {self.mode!r}"
            )
        if self.ordering not in _ORDERINGS:
            raise ValueError(f"unknown ordering {self.ordering!r}")
        if self.pair_layout not in PAIR_LAYOUTS:
            raise ValueError(f"unknown pair layout {self.pair_layout!r}")
        if self.fusion_method not in FUSION_METHOD_VALUES:
            raise ValueError(
                f"unknown fusion method {self.fusion_method!r}"
            )
        if self.fusion_method != "accu" and self.mode != "fusion":
            raise ValueError(
                f"fusion_method {self.fusion_method!r} applies to mode "
                f"'fusion' only, not {self.mode!r}"
            )

    @property
    def label(self) -> str:
        """Compact display/report name, unique within a grid."""
        parts = [self.mode, self.method, self.backend]
        if self.fusion_backend and self.fusion_backend != self.backend:
            parts.append(f"fuse-{self.fusion_backend}")
        if self.n_partitions > 1:
            parts.append(
                f"p{self.n_partitions}-{self.executor}-{self.reduce}"
                f"-{self.partition_by}"
            )
        elif self.executor != "serial":
            parts.append(self.executor)
        if self.epoch_size is not None:
            parts.append(f"e{self.epoch_size}")
        if self.ordering != "by_contribution":
            parts.append(self.ordering)
        if self.hybrid_threshold is not None:
            parts.append(f"t{self.hybrid_threshold}")
        if self.band is not None:
            parts.append("band")
        if self.mode == "fusion":
            parts.append(f"r{self.rounds}")
        if self.fusion_method != "accu":
            parts.append(self.fusion_method)
        if self.pair_layout != "auto":
            parts.append(self.pair_layout)
        return ":".join(parts)

    def reference(self) -> "CaseConfig":
        """The paper-literal twin: python backends, in-process executor."""
        return replace(
            self, backend="python", fusion_backend="python", executor="serial"
        )

    @property
    def contract(self) -> str:
        """``"bitexact"`` or ``"numeric"`` (see the module docstring)."""
        if self.mode == "scan":
            return "bitexact"
        if self.backend == "python" and self.fusion_backend in (None, "python"):
            return "bitexact"
        if (
            self.mode == "detect"
            and self.n_partitions == 1
            and self.method in SCAN_METHODS
        ):
            return "bitexact"
        return "numeric"


@dataclass
class CaseOutcome:
    """The diff of one case: empty ``divergences`` means conformance."""

    config: CaseConfig
    divergences: list[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def diverged(self) -> bool:
        return bool(self.divergences)


# ----------------------------------------------------------------------
# Runners
# ----------------------------------------------------------------------
def _params(backend: str, pair_layout: str = "auto") -> CopyParams:
    return CopyParams(backend=backend, pair_layout=pair_layout)


#: The lazily-spawned localhost cluster shared by every ``remote`` case.
#: Spawning two interpreters per case would dominate grid time, so the
#: first remote case pays the startup cost and the rest reuse the live
#: workers (LocalCluster registers its own atexit cleanup).
_SHARED_CLUSTER: tuple | None = None


def _shared_cluster():
    global _SHARED_CLUSTER
    if _SHARED_CLUSTER is None:
        from ..cluster import LocalCluster

        cluster = LocalCluster(2)
        _SHARED_CLUSTER = (cluster, cluster.executor())
    return _SHARED_CLUSTER[1]


def _case_cluster(config: "CaseConfig"):
    return _shared_cluster() if config.executor == "remote" else None


def _run_detect(dataset, probabilities, accuracies, config: CaseConfig):
    params = _params(config.backend, config.pair_layout)
    if config.n_partitions > 1:
        from ..parallel import detect_hybrid_parallel, detect_index_parallel

        cluster = _case_cluster(config)
        if config.method == "index":
            return detect_index_parallel(
                dataset,
                probabilities,
                accuracies,
                params,
                n_partitions=config.n_partitions,
                strategy="work" if config.partition_by == "work" else "stride",
                executor=config.executor,
                reduce=config.reduce,
                cluster=cluster,
            )
        return detect_hybrid_parallel(
            dataset,
            probabilities,
            accuracies,
            params,
            n_partitions=config.n_partitions,
            executor=config.executor,
            epoch_size=config.epoch_size,
            reduce=config.reduce,
            partition_by=config.partition_by,
            cluster=cluster,
        )
    kwargs = {}
    if config.hybrid_threshold is not None:
        kwargs["hybrid_threshold"] = config.hybrid_threshold
    return detect(
        dataset,
        probabilities,
        accuracies,
        params,
        method=config.method,
        ordering=_ORDERINGS[config.ordering],
        epoch_size=config.epoch_size,
        **kwargs,
    )


def _run_scan(dataset, probabilities, accuracies, config: CaseConfig):
    threshold = config.hybrid_threshold
    if threshold is None:
        threshold = 16 if config.method == "hybrid" else 0
    return scan_with_bounds(
        dataset,
        probabilities,
        accuracies,
        _params(config.backend, config.pair_layout),
        ordering=_ORDERINGS[config.ordering],
        use_timers=config.method != "bound",
        hybrid_threshold=threshold,
        track_bookkeeping=True,
        band=config.band,
        epoch_size=config.epoch_size,
    )


def _make_detector(config: CaseConfig):
    params = _params(config.backend, config.pair_layout)
    if config.method == "none":
        return None
    if config.method == "incremental":
        return IncrementalDetector(params, epoch_size=config.epoch_size)
    return SingleRoundDetector(
        params,
        method=config.method,
        epoch_size=config.epoch_size,
        n_partitions=config.n_partitions,
        executor=config.executor,
        reduce=config.reduce,
        partition_by=config.partition_by,
        cluster=_case_cluster(config),
    )


_RUNNERS = {"detect": _run_detect, "scan": _run_scan}


# ----------------------------------------------------------------------
# Comparators
# ----------------------------------------------------------------------
def _close(a: float, b: float) -> bool:
    return abs(a - b) <= NUMERIC_TOL


def _compare_decisions(
    reference: DetectionResult, candidate: DetectionResult, contract: str
) -> list[str]:
    problems: list[str] = []
    ref_pairs = set(reference.decisions)
    got_pairs = set(candidate.decisions)
    if ref_pairs != got_pairs:
        missing = sorted(ref_pairs - got_pairs)[:5]
        extra = sorted(got_pairs - ref_pairs)[:5]
        problems.append(f"decision pairs differ: missing={missing} extra={extra}")
        return problems
    for pair in sorted(ref_pairs):
        ref = reference.decisions[pair]
        got = candidate.decisions[pair]
        if contract == "bitexact":
            if got != ref:
                problems.append(
                    f"pair {pair}: decision not bit-identical "
                    f"(c_fwd {got.c_fwd.hex()} vs {ref.c_fwd.hex()}, "
                    f"c_bwd {got.c_bwd.hex()} vs {ref.c_bwd.hex()}, "
                    f"copying {got.copying} vs {ref.copying}, "
                    f"early {got.early} vs {ref.early})"
                )
            continue
        if got.copying != ref.copying:
            problems.append(
                f"pair {pair}: copying verdict {got.copying} vs {ref.copying}"
            )
        if got.early != ref.early:
            problems.append(f"pair {pair}: early flag {got.early} vs {ref.early}")
        for name in ("c_fwd", "c_bwd"):
            if not _close(getattr(got, name), getattr(ref, name)):
                problems.append(
                    f"pair {pair}: {name} drift "
                    f"{getattr(got, name)!r} vs {getattr(ref, name)!r}"
                )
        for name in ("independent", "forward", "backward"):
            if not _close(
                getattr(got.posterior, name), getattr(ref.posterior, name)
            ):
                problems.append(
                    f"pair {pair}: posterior.{name} drift "
                    f"{getattr(got.posterior, name)!r} vs "
                    f"{getattr(ref.posterior, name)!r}"
                )
    return problems


def _compare_cost(reference, candidate, fields: Sequence[str]) -> list[str]:
    return [
        f"cost.{name}: {getattr(candidate.cost, name)} vs "
        f"{getattr(reference.cost, name)}"
        for name in fields
        if getattr(candidate.cost, name) != getattr(reference.cost, name)
    ]


def _detection_problems(
    reference: DetectionResult,
    candidate: DetectionResult,
    contract: str,
    n_partitions: int,
    method: str,
) -> list[str]:
    """Diff two detection results computed from *identical* inputs."""
    problems = _compare_decisions(reference, candidate, contract)
    if contract == "bitexact" or n_partitions == 1:
        # The vectorized kernels reproduce the paper's computation
        # accounting exactly even where scores differ in the last bits.
        cost_fields = ("computations", "values_examined", "pairs_considered")
    elif method == "index":
        # Partitioned INDEX examines the same incidences/pairs in total;
        # HYBRID's prefix/suffix split re-buckets work, so only the
        # decision surface is comparable there.
        cost_fields = ("values_examined", "pairs_considered")
    else:
        cost_fields = ()
    problems.extend(_compare_cost(reference, candidate, cost_fields))
    return problems


def _compare_detect(reference, candidate, config: CaseConfig) -> list[str]:
    return _detection_problems(
        reference, candidate, config.contract, config.n_partitions, config.method
    )


def _compare_scan(reference, candidate, config: CaseConfig) -> list[str]:
    problems = _compare_decisions(reference.result, candidate.result, "bitexact")
    problems.extend(
        _compare_cost(
            reference.result,
            candidate.result,
            ("computations", "values_examined", "pairs_considered"),
        )
    )
    ref_book = reference.bookkeeping or {}
    got_book = candidate.bookkeeping or {}
    if set(ref_book) != set(got_book):
        problems.append(
            f"bookkeeping pairs differ: "
            f"missing={sorted(set(ref_book) - set(got_book))[:5]} "
            f"extra={sorted(set(got_book) - set(ref_book))[:5]}"
        )
    else:
        for pair in sorted(ref_book):
            if got_book[pair] != ref_book[pair]:
                problems.append(
                    f"pair {pair}: bookkeeping not bit-identical "
                    f"({got_book[pair]} vs {ref_book[pair]})"
                )
    return problems


def _fusion_case(dataset, config: CaseConfig) -> list[str]:
    """Lockstep conformance along the candidate's fusion trajectory.

    Comparing two complete fusion runs end-to-end is chaotic on
    ill-conditioned worlds (see the module docstring), so the engine
    advances one trajectory — the candidate's — and verifies every step
    against the reference *on bit-identical inputs*: the per-round
    detection under the full single-round contract, the ACCU/ACCUCOPY
    value-probability and accuracy updates at :data:`NUMERIC_TOL`, and
    the round's tie-aware fused truths.  Both detectors (stateful
    INCREMENTAL included) see exactly the same inputs every round, so
    their cross-round state stays comparable by construction.

    Under ``fusion_method == "ds"`` the value-probability step runs the
    Dempster-Shafer combination instead (reference loop vs columnar
    kernel) and each round's per-item conflict dict joins the compared
    surface at the same tolerance; the accuracy update is the shared
    ACCU re-estimate either way, exactly as in ``run_fusion``.
    """
    from ..fusion import choose_values, update_accuracies, value_probabilities
    from ..fusion.ds import ds_value_probabilities

    ds = config.fusion_method == "ds"
    params = _params(config.backend, config.pair_layout)
    ref_params = _params("python")
    fusion_backend = config.fusion_backend or config.backend
    if fusion_backend == "numpy":
        import numpy as np

        from ..fusion.accu_kernel import (
            FusionColumns,
            update_accuracies_columnar,
            value_probabilities_columnar,
        )

        cols = FusionColumns.from_dataset(dataset)

        if ds:
            from ..fusion.ds import ds_value_probabilities_columnar

            def candidate_probs(accs, detection=None):
                round_ = ds_value_probabilities_columnar(
                    cols, accs, params, detection=detection
                )
                return round_.probabilities, round_.conflict

        else:

            def candidate_probs(accs, detection=None):
                return (
                    value_probabilities_columnar(cols, accs, params, detection),
                    None,
                )

        def candidate_accs(probs):
            return update_accuracies_columnar(
                cols, np.asarray(probs, dtype=np.float64), params
            )

        update_tol = NUMERIC_TOL
    else:
        if ds:

            def candidate_probs(accs, detection=None):
                round_ = ds_value_probabilities(
                    dataset, accs, params, detection=detection
                )
                return round_.probabilities, round_.conflict

        else:

            def candidate_probs(accs, detection=None):
                return (
                    value_probabilities(
                        dataset, accs, params, detection=detection
                    ),
                    None,
                )

        def candidate_accs(probs):
            return update_accuracies(dataset, probs, params)

        # Same reference loops on both sides: any difference is
        # nondeterminism, which is itself a divergence.
        update_tol = 0.0

    def reference_probs(accs, detection=None):
        if ds:
            round_ = ds_value_probabilities(
                dataset, accs, ref_params, detection=detection
            )
            return round_.probabilities, round_.conflict
        return (
            value_probabilities(dataset, accs, ref_params, detection=detection),
            None,
        )

    if config.backend == "python":
        detection_contract = "bitexact"
    elif config.n_partitions == 1 and config.method in (
        "bound",
        "bound+",
        "hybrid",
        "incremental",
    ):
        detection_contract = "bitexact"
    else:
        detection_contract = "numeric"

    detector = _make_detector(config)
    ref_detector = _make_detector(config.reference())
    problems: list[str] = []

    def compare_vector(round_no: int, name: str, got, ref) -> None:
        got = [float(x) for x in got]
        ref = [float(x) for x in ref]
        if len(got) != len(ref):
            problems.append(
                f"round {round_no}: {name} length {len(got)} vs {len(ref)}"
            )
            return
        problems.extend(
            f"round {round_no}: {name}[{i}] drift {g!r} vs {r!r}"
            for i, (g, r) in enumerate(zip(got, ref))
            if abs(g - r) > update_tol
        )

    def compare_truths(round_no: int, got_probs, ref_probs) -> None:
        got_chosen = choose_values(dataset, got_probs)
        ref_chosen = choose_values(dataset, ref_probs)
        if got_chosen == ref_chosen:
            return
        for item in sorted(set(got_chosen) | set(ref_chosen)):
            got_value = got_chosen.get(item)
            ref_value = ref_chosen.get(item)
            if got_value == ref_value:
                continue
            if (
                got_value is not None
                and ref_value is not None
                and _close(ref_probs[got_value], ref_probs[ref_value])
            ):
                # Sub-tolerance near-tie in the reference itself: both
                # resolutions are defensible (structural ties stay
                # bit-equal and break identically).
                continue
            problems.append(
                f"round {round_no}: fused truth for item {item} differs "
                f"({got_value} vs {ref_value})"
            )

    def compare_conflict(round_no: int, got, ref) -> None:
        if got is None and ref is None:
            return
        if got is None or ref is None or set(got) != set(ref):
            problems.append(
                f"round {round_no}: conflict items differ "
                f"({None if got is None else sorted(got)[:5]} vs "
                f"{None if ref is None else sorted(ref)[:5]})"
            )
            return
        problems.extend(
            f"round {round_no}: conflict[{item}] drift "
            f"{got[item]!r} vs {ref[item]!r}"
            for item in sorted(got)
            if abs(got[item] - ref[item]) > update_tol
        )

    # The cold start (FusionConfig.initial_accuracy's default).
    accuracies = [0.8] * dataset.n_sources
    cand_probs, cand_conflict = candidate_probs(accuracies)
    probabilities = [float(p) for p in cand_probs]
    ref_probs, ref_conflict = reference_probs(accuracies)
    compare_vector(0, "probabilities", probabilities, ref_probs)
    compare_conflict(0, cand_conflict, ref_conflict)

    for round_no in range(1, config.rounds + 1):
        detection = None
        if detector is not None:
            detection = detector.run_round(
                round_no, dataset, probabilities, accuracies
            )
            ref_detection = ref_detector.run_round(
                round_no, dataset, probabilities, accuracies
            )
            problems.extend(
                f"round {round_no}: {problem}"
                for problem in _detection_problems(
                    ref_detection,
                    detection,
                    detection_contract,
                    config.n_partitions,
                    config.method,
                )
            )
        cand_probs, cand_conflict = candidate_probs(accuracies, detection)
        new_probs = [float(p) for p in cand_probs]
        ref_probs, ref_conflict = reference_probs(accuracies, detection)
        compare_vector(round_no, "probabilities", new_probs, ref_probs)
        compare_truths(round_no, new_probs, ref_probs)
        compare_conflict(round_no, cand_conflict, ref_conflict)
        new_accs = [float(a) for a in candidate_accs(new_probs)]
        compare_vector(
            round_no,
            "accuracies",
            new_accs,
            update_accuracies(dataset, new_probs, ref_params),
        )
        probabilities, accuracies = new_probs, new_accs
    return problems


_COMPARATORS = {"detect": _compare_detect, "scan": _compare_scan}


def run_case(world: World, config: CaseConfig) -> CaseOutcome:
    """Run one world under one configuration and diff it vs the reference.

    In ``detect``/``scan`` mode, reference-side exceptions propagate
    (they indicate an engine or generator bug, not a conformance
    divergence) while candidate-side exceptions are themselves
    divergences; ``fusion`` mode interleaves the two sides, so any
    exception there is reported as a divergence.
    """
    start = time.perf_counter()
    dataset, probabilities, accuracies = world.materialize()
    if config.mode == "fusion":
        try:
            divergences = _fusion_case(dataset, config)
        except Exception:
            divergences = [
                "fusion lockstep raised:\n" + traceback.format_exc(limit=8)
            ]
        return CaseOutcome(
            config=config,
            divergences=divergences,
            elapsed_seconds=time.perf_counter() - start,
        )
    runner = _RUNNERS[config.mode]
    reference = runner(dataset, probabilities, accuracies, config.reference())
    try:
        candidate = runner(dataset, probabilities, accuracies, config)
    except Exception:
        return CaseOutcome(
            config=config,
            divergences=[
                "candidate raised:\n" + traceback.format_exc(limit=8)
            ],
            elapsed_seconds=time.perf_counter() - start,
        )
    divergences = _COMPARATORS[config.mode](reference, candidate, config)
    return CaseOutcome(
        config=config,
        divergences=divergences,
        elapsed_seconds=time.perf_counter() - start,
    )


# ----------------------------------------------------------------------
# Shrinking
# ----------------------------------------------------------------------
def shrink_world(
    world: World,
    still_diverges: Callable[[World], bool],
    max_checks: int = 200,
) -> World:
    """Greedily minimise a diverging world while the divergence persists.

    Tries the biggest cuts first — whole sources, then whole items, then
    single claims — restarting each pass after a successful cut, within a
    budget of ``max_checks`` candidate evaluations.  A cut that makes
    ``still_diverges`` raise is treated as not preserving the divergence.
    """
    checks = 0

    def check(candidate: World) -> bool:
        nonlocal checks
        checks += 1
        try:
            return still_diverges(candidate)
        except Exception:
            return False

    current = world
    for cuts in (
        lambda w: [w.without_source(s) for s in w.sources if w.n_sources > 2],
        lambda w: [w.without_item(i) for i in dict.fromkeys(c[1] for c in w.claims)],
        lambda w: [w.without_claim(p) for p in range(w.n_claims)],
    ):
        progressed = True
        while progressed and checks < max_checks:
            progressed = False
            for candidate in cuts(current):
                if checks >= max_checks:
                    break
                if check(candidate):
                    current = candidate
                    progressed = True
                    break
    return current


# ----------------------------------------------------------------------
# Grids
# ----------------------------------------------------------------------
def smoke_grid() -> list[CaseConfig]:
    """The PR-time grid: all seven methods, both backends, all four
    executors (the remote one against a live 2-worker localhost
    cluster), both reduce topologies, and multi-round incremental
    fusion — kept small enough to finish within a CI smoke budget."""
    configs: list[CaseConfig] = [
        # Single-round detection, vectorized backends (serial).
        *(CaseConfig("detect", method) for method in METHODS),
        # Raw scans incl. bit-exact bookkeeping, tiny + default epochs.
        CaseConfig("scan", "bound", epoch_size=3),
        CaseConfig("scan", "bound+", epoch_size=3),
        CaseConfig("scan", "bound+"),
        CaseConfig("scan", "hybrid", epoch_size=3),
        CaseConfig("scan", "hybrid"),
        # The parallel engine: threads + processes, flat + tree, both
        # partition axes, python + numpy payloads.
        CaseConfig("detect", "index", n_partitions=2, executor="threads",
                   reduce="tree", partition_by="work"),
        CaseConfig("detect", "index", n_partitions=3, executor="processes"),
        CaseConfig("detect", "index", backend="python", n_partitions=2,
                   executor="threads", reduce="tree"),
        CaseConfig("detect", "hybrid", n_partitions=2, executor="threads"),
        CaseConfig("detect", "hybrid", n_partitions=2, executor="processes",
                   reduce="tree", partition_by="work"),
        # The remote executor: a shared 2-worker localhost cluster
        # (separate interpreters, real sockets) must conform exactly
        # like the in-process executors.
        CaseConfig("detect", "index", n_partitions=2, executor="remote",
                   reduce="tree", partition_by="work"),
        CaseConfig("detect", "hybrid", n_partitions=2, executor="remote"),
        # The sparse pair layout forced on small worlds: the compact
        # observed-pair state must match the reference bit-for-bit
        # (bound family) / at tolerance (kernel + fusion paths).
        CaseConfig("detect", "index", pair_layout="sparse"),
        CaseConfig("detect", "bound+", pair_layout="sparse"),
        CaseConfig("detect", "hybrid", pair_layout="sparse"),
        CaseConfig("scan", "bound+", epoch_size=3, pair_layout="sparse"),
        CaseConfig("fusion", "bound+", rounds=3, pair_layout="sparse"),
        # Multi-round fusion: ACCU ("none"), ACCUCOPY under every
        # detector, INCREMENTAL's prepare + incremental rounds.
        *(CaseConfig("fusion", method, rounds=4) for method in FUSION_METHODS),
        CaseConfig("fusion", "incremental", backend="python",
                   fusion_backend="numpy", rounds=4),
        CaseConfig("fusion", "index", n_partitions=2, executor="threads",
                   reduce="tree", rounds=3),
        # Dempster-Shafer fusion: reference DS loop vs columnar DS
        # kernel, per-item conflict dicts part of the compared surface.
        CaseConfig("fusion", "none", fusion_method="ds", rounds=3),
        CaseConfig("fusion", "hybrid", fusion_method="ds", rounds=3),
    ]
    return configs


def full_grid() -> list[CaseConfig]:
    """The nightly grid: the smoke grid plus orderings, epoch sweeps,
    banded thresholds, deeper partitioning and longer fusion runs."""
    configs = smoke_grid()
    configs += [
        # Alternative orderings and hybrid thresholds for the scans.
        CaseConfig("scan", "bound", ordering="by_provider", epoch_size=3),
        CaseConfig("scan", "bound+", ordering="by_provider"),
        CaseConfig("scan", "hybrid", hybrid_threshold=1, epoch_size=3),
        CaseConfig("scan", "bound+", band=(0.1, 0.9), epoch_size=3),
        CaseConfig("scan", "bound+", epoch_size=1),
        CaseConfig("scan", "hybrid", epoch_size=128),
        # Detection with explicit epoch sizes and orderings.
        CaseConfig("detect", "bound", epoch_size=1),
        CaseConfig("detect", "bound+", ordering="by_provider"),
        CaseConfig("detect", "hybrid", hybrid_threshold=1),
        # Deeper partitioning.
        CaseConfig("detect", "index", n_partitions=4, executor="threads",
                   partition_by="work"),
        CaseConfig("detect", "index", n_partitions=4, executor="processes",
                   reduce="tree"),
        CaseConfig("detect", "hybrid", n_partitions=3, executor="threads",
                   reduce="tree", partition_by="work"),
        CaseConfig("detect", "hybrid", backend="python", n_partitions=3,
                   executor="threads"),
        # Deeper sparse-layout coverage: the remaining methods, the
        # parallel merge path, and an epoch sweep.
        CaseConfig("detect", "pairwise", pair_layout="sparse"),
        CaseConfig("detect", "bound", pair_layout="sparse"),
        CaseConfig("scan", "hybrid", pair_layout="sparse"),
        CaseConfig("scan", "bound+", epoch_size=1, pair_layout="sparse"),
        CaseConfig("detect", "index", n_partitions=2, executor="threads",
                   reduce="tree", pair_layout="sparse"),
        CaseConfig("fusion", "incremental", rounds=4, pair_layout="sparse"),
        # Longer fusion runs and mixed-backend fusion.
        CaseConfig("fusion", "incremental", rounds=6),
        CaseConfig("fusion", "hybrid", rounds=6),
        CaseConfig("fusion", "none", backend="python", fusion_backend="numpy",
                   rounds=6),
        CaseConfig("fusion", "hybrid", n_partitions=2, executor="processes",
                   reduce="tree", partition_by="work", rounds=3),
        CaseConfig("detect", "index", n_partitions=3, executor="remote",
                   reduce="flat"),
        CaseConfig("fusion", "index", n_partitions=2, executor="remote",
                   reduce="tree", rounds=3),
        # Deeper Dempster-Shafer coverage: the stateful INCREMENTAL
        # detector and the mixed-backend (python detection, numpy DS
        # fusion) split.
        CaseConfig("fusion", "incremental", fusion_method="ds", rounds=4),
        CaseConfig("fusion", "none", backend="python",
                   fusion_backend="numpy", fusion_method="ds", rounds=4),
    ]
    return configs


GRIDS: dict[str, Callable[[], list[CaseConfig]]] = {
    "smoke": smoke_grid,
    "full": full_grid,
}


# ----------------------------------------------------------------------
# The grid runner
# ----------------------------------------------------------------------
@dataclass
class Divergence:
    """One confirmed divergence, shrunk and persisted."""

    case_index: int
    config: CaseConfig
    world: World
    details: list[str]
    corpus_path: str | None = None


@dataclass
class ConformanceReport:
    """Machine-readable outcome of one grid run."""

    grid: str
    seed: int
    n_cases: int
    configs: list[CaseConfig]
    divergences: list[Divergence] = field(default_factory=list)
    cases_per_config: dict[str, int] = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.divergences

    def to_json(self) -> dict:
        """The ``--report`` payload (stable, versioned)."""
        return {
            "version": 1,
            "grid": self.grid,
            "seed": self.seed,
            "cases": self.n_cases,
            "ok": self.ok,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "configs": [
                {
                    "label": config.label,
                    "contract": config.contract,
                    "cases": self.cases_per_config.get(config.label, 0),
                }
                for config in self.configs
            ],
            "divergences": [
                {
                    "case_index": d.case_index,
                    "config": asdict(d.config),
                    "label": d.config.label,
                    "world_kind": d.world.kind,
                    "world_sources": d.world.n_sources,
                    "world_claims": d.world.n_claims,
                    "details": d.details,
                    "corpus_path": d.corpus_path,
                }
                for d in self.divergences
            ],
        }


def run_grid(
    grid: str = "smoke",
    n_cases: int = 240,
    seed: int = 7,
    corpus_dir=None,
    shrink: bool = True,
    max_shrink_checks: int = 150,
    configs: Sequence[CaseConfig] | None = None,
    progress: Callable[[str], None] | None = None,
) -> ConformanceReport:
    """Sweep ``n_cases`` (world, config) cases over a named grid.

    Case ``i`` pairs configuration ``i % len(configs)`` with the
    deterministic world ``generate_world(i, seed)``, so every
    configuration meets every world kind and any case can be regenerated
    from ``(grid, seed, i)`` alone.  Divergent worlds are shrunk and, if
    ``corpus_dir`` is given, serialized there as replayable fixtures.

    Raises:
        ValueError: for an unknown grid name (when ``configs`` is not
            given) or ``n_cases < 1``.
    """
    if configs is None:
        try:
            configs = GRIDS[grid]()
        except KeyError:
            raise ValueError(
                f"unknown grid {grid!r}; expected one of {tuple(GRIDS)}"
            )
    configs = list(configs)
    if n_cases < 1:
        raise ValueError(f"n_cases must be >= 1, got {n_cases}")
    start = time.perf_counter()
    report = ConformanceReport(
        grid=grid, seed=seed, n_cases=n_cases, configs=configs
    )
    for case_index in range(n_cases):
        config = configs[case_index % len(configs)]
        world = generate_world(case_index, seed)
        outcome = run_case(world, config)
        report.cases_per_config[config.label] = (
            report.cases_per_config.get(config.label, 0) + 1
        )
        if not outcome.diverged:
            continue
        if progress is not None:
            progress(
                f"divergence at case {case_index} [{config.label}] "
                f"on a {world.kind} world — shrinking"
            )
        shrunk, details = world, outcome.divergences
        if shrink:
            # Remember each accepted candidate's divergences so the
            # shrunk world never needs a redundant re-run (the final
            # world was, by construction, the last accepted check).
            seen: dict[int, tuple[World, list[str]]] = {}

            def still_diverges(candidate: World) -> bool:
                case = run_case(candidate, config)
                if case.diverged:
                    seen[id(candidate)] = (candidate, case.divergences)
                return case.diverged

            shrunk = shrink_world(
                world, still_diverges, max_checks=max_shrink_checks
            )
            remembered = seen.get(id(shrunk))
            if remembered is not None and remembered[0] is shrunk:
                details = remembered[1]
        divergence = Divergence(
            case_index=case_index, config=config, world=shrunk, details=details
        )
        if corpus_dir is not None:
            from .corpus import save_case

            divergence.corpus_path = str(
                save_case(shrunk, config, details, corpus_dir)
            )
        report.divergences.append(divergence)
    report.elapsed_seconds = time.perf_counter() - start
    return report
