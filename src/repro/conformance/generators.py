"""World generators shared by the conformance engine and the test suite.

Historically the adversarial generation logic — clone sources, extreme
value probabilities, tied accuracy menus, ``theta_cp`` threshold-edge
bisection — lived as hypothesis strategies in ``tests/strategies.py``,
which made it unusable outside a hypothesis ``@given``.  The differential
grid fuzzer needs the *same* worlds but driven by a plain seeded
``random.Random`` (so every case is replayable from a seed), so the
construction logic lives here once, written against the tiny
:class:`Chooser` interface, with two adapters:

* :class:`RandomChooser` — wraps ``random.Random``; what the conformance
  engine uses (``repro conformance --seed N`` is fully deterministic).
* :class:`DrawChooser` — wraps a hypothesis ``draw`` function; the
  strategies at the bottom of this module (re-exported by
  ``tests/strategies.py``) use it, so shrinking still works.

On top of the drawn worlds, :func:`profile_world` reuses the Table V
``synth`` profiles (zipf coverage, heterogeneous accuracies) at tiny
scales, and :func:`theta_edge_worlds` bisects a value probability down to
*adjacent float64s* so the accumulated ``C^min`` lands as exactly on
``theta_cp`` as float worlds allow.

A drawn problem is packaged as a :class:`World` — claims as
``(source, item, value)`` string triples plus per-value probabilities and
per-source accuracies keyed by *names*, not ids — so it survives
shrinking (dropping a source re-interns every id; names are stable) and
serializes losslessly into the regression corpus
(:mod:`repro.conformance.corpus`).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Protocol, Sequence

from ..data import Dataset, DatasetBuilder

#: Probabilities that drive Eq. (6) contributions to their extremes:
#: sharing a near-certainly-false value (p -> 0) concludes *copying* on
#: the very first shared entry; near-certainly-true values (p -> 1)
#: contribute almost nothing, pushing pairs toward the no-copy bound or
#: all the way to an exact scan-end resolution.
EXTREME_PROBABILITIES = (0.001, 0.002, 0.01, 0.2, 0.5, 0.9, 0.99, 0.998, 0.999)

#: Accuracy menus: a single shared value exercises tied per-provider
#: terms (and the numpy backend's grid-deduplicated log path); the
#: extremes exercise clamping.
ACCURACY_MENUS = ((0.8,), (0.5,), (0.99,), (0.01, 0.99), (0.3, 0.8), (0.5, 0.75, 0.9))


class Chooser(Protocol):
    """The decisions a world builder needs, backend-agnostic."""

    def integer(self, lo: int, hi: int) -> int:  # pragma: no cover - protocol
        """An integer in ``[lo, hi]`` inclusive."""
        ...

    def boolean(self) -> bool:  # pragma: no cover - protocol
        ...

    def choice(self, options: Sequence):  # pragma: no cover - protocol
        ...

    def unit_float(self, lo: float, hi: float) -> float:  # pragma: no cover
        ...

    def subset(self, lo: int, hi: int, max_size: int) -> list[int]:  # pragma: no cover
        """A duplicate-free list of integers from ``[lo, hi]``."""
        ...


class RandomChooser:
    """Drive the builders from a seeded ``random.Random`` (replayable)."""

    def __init__(self, rng: random.Random):
        self.rng = rng

    def integer(self, lo: int, hi: int) -> int:
        return self.rng.randint(lo, hi)

    def boolean(self) -> bool:
        return self.rng.random() < 0.5

    def choice(self, options: Sequence):
        return options[self.rng.randrange(len(options))]

    def unit_float(self, lo: float, hi: float) -> float:
        return self.rng.uniform(lo, hi)

    def subset(self, lo: int, hi: int, max_size: int) -> list[int]:
        population = range(lo, hi + 1)
        size = min(self.rng.randint(0, max_size), len(population))
        return self.rng.sample(population, size)


class DrawChooser:
    """Drive the builders from a hypothesis ``draw`` (shrinkable)."""

    def __init__(self, draw: Callable):
        from hypothesis import strategies as st

        self.draw = draw
        self.st = st

    def integer(self, lo: int, hi: int) -> int:
        return self.draw(self.st.integers(min_value=lo, max_value=hi))

    def boolean(self) -> bool:
        return self.draw(self.st.booleans())

    def choice(self, options: Sequence):
        return self.draw(self.st.sampled_from(list(options)))

    def unit_float(self, lo: float, hi: float) -> float:
        return self.draw(self.st.floats(min_value=lo, max_value=hi))

    def subset(self, lo: int, hi: int, max_size: int) -> list[int]:
        return self.draw(
            self.st.lists(
                self.st.integers(min_value=lo, max_value=hi),
                unique=True,
                max_size=max_size,
            )
        )


# ----------------------------------------------------------------------
# The name-keyed world container
# ----------------------------------------------------------------------
@dataclass
class World:
    """A complete detection problem keyed by stable string names.

    Attributes:
        kind: which generator produced it (diagnostic; stored in corpus
            fixtures).
        sources: every source name in id order — including claimless
            sources, which ``claims`` alone could not represent.
        claims: ``(source, item, value)`` triples in interning order.
        prob_by_value: ``(item, value) -> P(D.v)``.
        acc_by_source: ``source -> A(S)``.
    """

    kind: str
    sources: list[str]
    claims: list[tuple[str, str, str]]
    prob_by_value: dict[tuple[str, str], float]
    acc_by_source: dict[str, float]
    seed: int | None = field(default=None, compare=False)

    def materialize(self) -> tuple[Dataset, list[float], list[float]]:
        """Build the ``(dataset, probabilities, accuracies)`` triple.

        Interning order is fixed by ``sources`` + ``claims`` order, so
        two materializations of the same ``World`` are identical.
        """
        builder = DatasetBuilder()
        for source in self.sources:
            builder.ensure_source(source)
        for source, item, value in self.claims:
            builder.add(source, item, value)
        dataset = builder.build()
        probabilities = [
            self.prob_by_value[
                (dataset.item_names[dataset.value_item[v]], dataset.value_label[v])
            ]
            for v in range(dataset.n_values)
        ]
        accuracies = [self.acc_by_source[name] for name in dataset.source_names]
        return dataset, probabilities, accuracies

    @property
    def n_sources(self) -> int:
        return len(self.sources)

    @property
    def n_claims(self) -> int:
        return len(self.claims)

    def without_source(self, source: str) -> "World":
        """A copy with one source (and its claims) removed."""
        return World(
            kind=self.kind,
            sources=[s for s in self.sources if s != source],
            claims=[c for c in self.claims if c[0] != source],
            prob_by_value=dict(self.prob_by_value),
            acc_by_source={
                s: a for s, a in self.acc_by_source.items() if s != source
            },
            seed=self.seed,
        )

    def without_item(self, item: str) -> "World":
        """A copy with every claim on one item removed."""
        return World(
            kind=self.kind,
            sources=list(self.sources),
            claims=[c for c in self.claims if c[1] != item],
            prob_by_value=dict(self.prob_by_value),
            acc_by_source=dict(self.acc_by_source),
            seed=self.seed,
        )

    def without_claim(self, position: int) -> "World":
        """A copy with the claim at ``position`` removed."""
        return World(
            kind=self.kind,
            sources=list(self.sources),
            claims=self.claims[:position] + self.claims[position + 1 :],
            prob_by_value=dict(self.prob_by_value),
            acc_by_source=dict(self.acc_by_source),
            seed=self.seed,
        )


def world_from_problem(
    dataset: Dataset,
    probabilities: Sequence[float],
    accuracies: Sequence[float],
    kind: str = "imported",
    seed: int | None = None,
) -> World:
    """Package an existing ``(dataset, probs, accs)`` problem as a World."""
    claims = [
        (dataset.source_names[source_id], dataset.item_names[item_id],
         dataset.value_label[value_id])
        for source_id, source_claims in enumerate(dataset.claims)
        for item_id, value_id in source_claims.items()
    ]
    prob_by_value = {
        (dataset.item_names[dataset.value_item[v]], dataset.value_label[v]):
            float(probabilities[v])
        for v in range(dataset.n_values)
    }
    acc_by_source = {
        name: float(accuracies[i]) for i, name in enumerate(dataset.source_names)
    }
    return World(
        kind=kind,
        sources=list(dataset.source_names),
        claims=claims,
        prob_by_value=prob_by_value,
        acc_by_source=acc_by_source,
        seed=seed,
    )


# ----------------------------------------------------------------------
# Chooser-driven builders (one implementation for tests AND the engine)
# ----------------------------------------------------------------------
def build_dataset(
    choose: Chooser,
    max_sources: int = 8,
    max_items: int = 12,
    max_values_per_item: int = 4,
) -> tuple[list[str], list[tuple[str, str, str]]]:
    """Draw a random small dataset as ``(sources, claims)``.

    Every source claims a random subset of items; each claim picks one of
    the item's candidate values, so shared values arise naturally.
    """
    n_sources = choose.integer(2, max_sources)
    n_items = choose.integer(1, max_items)
    sources = [f"S{source_id}" for source_id in range(n_sources)]
    claims: list[tuple[str, str, str]] = []
    for source in sources:
        for item_id in choose.subset(0, n_items - 1, n_items):
            value = choose.integer(0, max_values_per_item - 1)
            claims.append((source, f"item{item_id}", f"v{value}"))
    return sources, claims


def _finish_world(
    choose: Chooser,
    kind: str,
    sources: list[str],
    claims: list[tuple[str, str, str]],
    prob_of_value,
    acc_of_source,
) -> World:
    """Materialize once to fix value/source order, then draw the vectors.

    Probabilities are drawn in *value-id order* and accuracies in
    *source-id order* — exactly what the historical strategies did — so
    the hypothesis shrinker keeps its locality.
    """
    builder = DatasetBuilder()
    for source in sources:
        builder.ensure_source(source)
    for source, item, value in claims:
        builder.add(source, item, value)
    dataset = builder.build()
    prob_by_value = {}
    for v in range(dataset.n_values):
        key = (dataset.item_names[dataset.value_item[v]], dataset.value_label[v])
        prob_by_value[key] = prob_of_value(choose)
    acc_by_source = {
        name: acc_of_source(choose) for name in dataset.source_names
    }
    return World(
        kind=kind,
        sources=list(dataset.source_names),
        claims=claims,
        prob_by_value=prob_by_value,
        acc_by_source=acc_by_source,
    )


def random_world(
    choose: Chooser, max_sources: int = 8, max_items: int = 12
) -> World:
    """A (dataset, probabilities, accuracies) detection problem."""
    sources, claims = build_dataset(
        choose, max_sources=max_sources, max_items=max_items
    )
    return _finish_world(
        choose,
        "random",
        sources,
        claims,
        prob_of_value=lambda c: c.unit_float(0.001, 0.999),
        acc_of_source=lambda c: c.unit_float(0.01, 0.99),
    )


def adversarial_world(
    choose: Chooser, max_sources: int = 6, max_items: int = 8
) -> World:
    """A world engineered to sit on the bound scans' decision edges.

    Compared to :func:`random_world`: *clone* sources (identical claim
    sets — maximal overlap, copy conclusions on the earliest entries),
    extreme value probabilities (first-entry and last-entry conclusions),
    tiny accuracy menus (tied scores, timer milestones landing exactly on
    integer counts), and single-item datasets (the index degenerates to
    one entry, so every conclusion is simultaneously first- and
    last-entry).  Both backends must agree on every one of these.
    """
    n_sources = choose.integer(2, max_sources)
    n_items = choose.integer(1, max_items)
    sources = [f"S{source_id}" for source_id in range(n_sources)]
    claims: list[tuple[str, str, str]] = []
    # Source 0 claims a contiguous prefix of items; clones repeat its
    # claims verbatim, other sources draw freely with few value choices
    # (ties everywhere).
    base_claims = {
        item_id: choose.integer(0, 1)
        for item_id in range(choose.integer(1, n_items))
    }
    for item_id, value in base_claims.items():
        claims.append(("S0", f"item{item_id}", f"v{value}"))
    for source in sources[1:]:
        if choose.boolean():
            for item_id, value in base_claims.items():
                claims.append((source, f"item{item_id}", f"v{value}"))
        else:
            for item_id in choose.subset(0, n_items - 1, n_items):
                claims.append((source, f"item{item_id}", f"v{choose.integer(0, 1)}"))
    menu = choose.choice(ACCURACY_MENUS)
    return _finish_world(
        choose,
        "adversarial",
        sources,
        claims,
        prob_of_value=lambda c: c.choice(EXTREME_PROBABILITIES),
        acc_of_source=lambda c: c.choice(menu),
    )


def large_sparse_world(
    choose: Chooser,
    n_sources: int = 32,
    n_items: int = 12,
    zipf_exponent: float = 1.1,
    coverage: float = 0.8,
    max_values_per_item: int = 3,
) -> World:
    """A many-sources, Zipf-coverage world for the sparse pair layout.

    The rank-``r`` source covers up to ``n_items * coverage / (r+1)**z``
    items (one at minimum), drawn with a quadratic popularity skew
    (low-id items are claimed far more often), so head sources overlap
    heavily on the popular items while the long tail touches one or two
    of them each — the regime where observed pairs are a vanishing
    fraction of the ``n_sources**2`` key space and the dense flat arrays
    stop scaling, yet the scans over the popular-item pairs are long
    enough to be worth vectorizing.  ``coverage`` tunes the
    observed-pair density directly; the grid runs this downsized (tens
    of sources) while the scale benchmark drives the same construction
    to 10k+ sources.
    """
    sources = [f"S{rank}" for rank in range(n_sources)]
    claims: list[tuple[str, str, str]] = []
    for rank, source in enumerate(sources):
        quota = max(
            1, round(n_items * coverage / (rank + 1) ** zipf_exponent)
        )
        items = set()
        for _ in range(quota):
            unit = choose.unit_float(0.0, 1.0)
            items.add(min(int(unit * unit * n_items), n_items - 1))
        for item_id in sorted(items):
            value = choose.integer(0, max_values_per_item - 1)
            claims.append((source, f"item{item_id}", f"v{value}"))
    return _finish_world(
        choose,
        "large_sparse",
        sources,
        claims,
        prob_of_value=lambda c: c.choice(EXTREME_PROBABILITIES),
        acc_of_source=lambda c: c.unit_float(0.05, 0.95),
    )


def shared_run_world(
    n_shared: int, p_true: float, accuracy: float = 0.8
) -> tuple[Dataset, list[float], list[float]]:
    """Two sources sharing ``n_shared`` identical claims at one probability.

    The scan sees ``n_shared`` equal-scored entries, each contributing
    the same amount to the (0, 1) pair — the cleanest dial for placing
    ``C^min`` relative to ``theta_cp``.
    """
    builder = DatasetBuilder()
    builder.ensure_source("S0")
    builder.ensure_source("S1")
    for item_id in range(n_shared):
        builder.add("S0", f"item{item_id}", "v0")
        builder.add("S1", f"item{item_id}", "v0")
    dataset = builder.build()
    return dataset, [p_true] * dataset.n_values, [accuracy, accuracy]


def theta_edge_worlds(
    params, n_shared: int = 3, accuracy: float = 0.8
) -> list[tuple[Dataset, list[float], list[float]]]:
    """Worlds whose conclusion flips between adjacent probability floats.

    Bisects the value probability of :func:`shared_run_world` down to
    *neighbouring float64 values* ``p_lo``/``p_hi`` such that the scan
    concludes early at ``p_lo`` but not at ``p_hi`` — the accumulated
    ``C^min`` lands as exactly on ``theta_cp`` (and, with few shared
    entries, ``C^max`` on ``theta_ind``) as float worlds allow.  Both
    sides of every edge are returned; the two backends must agree on the
    ``>=`` / ``<`` tie-breaking at each one.

    The bisection always runs the *reference* backend: the edge is
    defined by the paper-literal scan, never by the implementation under
    test.
    """
    from dataclasses import replace

    from ..core import detect_bound

    reference_params = (
        params if params.backend == "python" else replace(params, backend="python")
    )

    def concludes_early(p: float) -> bool:
        dataset, probs, accs = shared_run_world(n_shared, p, accuracy)
        result = detect_bound(dataset, probs, accs, reference_params)
        decision = result.decision_for(0, 1)
        return decision is not None and decision.early and decision.copying

    lo, hi = 0.001, 0.999
    if not concludes_early(lo):
        return [shared_run_world(n_shared, lo, accuracy)]
    if concludes_early(hi):
        return [shared_run_world(n_shared, hi, accuracy)]
    while math.nextafter(lo, hi) < hi:
        mid = (lo + hi) / 2.0
        if mid in (lo, hi):
            break
        if concludes_early(mid):
            lo = mid
        else:
            hi = mid
    return [
        shared_run_world(n_shared, lo, accuracy),
        shared_run_world(n_shared, hi, accuracy),
    ]


# ----------------------------------------------------------------------
# Profile-backed worlds (zipf coverage, heterogeneous accuracies)
# ----------------------------------------------------------------------
#: (profile name, scale) pairs small enough for exhaustive reference runs
#: yet structurally faithful: ``book_cs`` keeps the zipf heavy tail,
#: ``stock_1day`` the dense all-pairs-overlap regime.
PROFILE_MENU = (("book_cs", 0.02), ("stock_1day", 0.004))


def profile_world(name: str, scale: float, seed: int) -> World:
    """A Table V-shaped synthetic world with realised accuracies.

    Probabilities are bootstrapped by voting (the CLI's cold-start
    convention) and accuracies are the generator's *realised* per-source
    accuracies — genuinely heterogeneous, unlike the uniform 0.8 start.
    """
    from ..fusion import vote_probabilities
    from ..synth import make_profile

    synthetic = make_profile(name, scale=scale, seed=seed)
    dataset = synthetic.dataset
    probabilities = vote_probabilities(dataset)
    accuracies = [
        min(max(synthetic.true_accuracies.get(source, 0.5), 0.05), 0.95)
        for source in dataset.source_names
    ]
    return world_from_problem(
        dataset, probabilities, accuracies, kind=f"profile:{name}", seed=seed
    )


# ----------------------------------------------------------------------
# The engine's seeded world stream
# ----------------------------------------------------------------------
#: Generator kinds cycled by :func:`generate_world`.
WORLD_KINDS = (
    "random",
    "adversarial",
    "random",
    "adversarial",
    "shared_run",
    "profile",
    "large_sparse",
    "theta_edge",
)

_theta_edge_cache: dict[tuple, list] = {}


def generate_world(case_index: int, seed: int) -> World:
    """The ``case_index``-th world of the stream seeded by ``seed``.

    Deterministic: ``(case_index, seed)`` fully determines the world, so
    any case from a grid run can be regenerated without the corpus.
    Cycles through :data:`WORLD_KINDS` so every configuration meets
    random, adversarial (clones/extremes/ties), equal-run, profile
    (zipf/heterogeneous), sparse-coverage (many sources, few observed
    pairs) and threshold-edge worlds.
    """
    kind = WORLD_KINDS[case_index % len(WORLD_KINDS)]
    rng = random.Random(seed * 1_000_003 + case_index)
    choose = RandomChooser(rng)
    if kind == "random":
        world = random_world(choose)
    elif kind == "adversarial":
        world = adversarial_world(choose)
    elif kind == "shared_run":
        problem = shared_run_world(
            n_shared=rng.randint(1, 6),
            p_true=choose.choice(EXTREME_PROBABILITIES),
            accuracy=choose.choice((0.5, 0.8, 0.99)),
        )
        world = world_from_problem(*problem, kind="shared_run")
    elif kind == "profile":
        name, scale = PROFILE_MENU[(case_index // len(WORLD_KINDS)) % len(PROFILE_MENU)]
        world = profile_world(name, scale, seed=seed + case_index)
    elif kind == "large_sparse":
        # Downsized for grid budgets; the scale benchmark runs the same
        # construction at 10k+ sources.
        world = large_sparse_world(
            choose,
            n_sources=choose.integer(24, 40),
            n_items=choose.integer(8, 16),
        )
    else:  # theta_edge
        from ..core.params import CopyParams

        key = (rng.randint(1, 5), choose.choice((0.7, 0.8)))
        if key not in _theta_edge_cache:
            _theta_edge_cache[key] = theta_edge_worlds(
                CopyParams(backend="python"), n_shared=key[0], accuracy=key[1]
            )
        problems = _theta_edge_cache[key]
        world = world_from_problem(
            *problems[case_index % len(problems)], kind="theta_edge"
        )
    world.seed = seed
    return world


# ----------------------------------------------------------------------
# Hypothesis strategies (re-exported by tests/strategies.py)
# ----------------------------------------------------------------------
#: Names served lazily through module ``__getattr__``: hypothesis is a
#: *test* dependency and imports slowly, so neither the conformance
#: engine nor the CLI may pay for it — only the first strategy access
#: (i.e. the test suite) does.
_STRATEGY_EXPORTS = (
    "probabilities",
    "accuracies",
    "datasets",
    "worlds",
    "adversarial_worlds",
)

_strategies: dict | None = None


def _hypothesis_strategies() -> dict:
    """Build (once) the hypothesis strategies wrapping the builders."""
    global _strategies
    if _strategies is not None:
        return _strategies
    from hypothesis import strategies as st

    probabilities = st.floats(min_value=0.001, max_value=0.999)
    accuracies = st.floats(min_value=0.01, max_value=0.99)

    @st.composite
    def datasets(
        draw,
        max_sources: int = 8,
        max_items: int = 12,
        max_values_per_item: int = 4,
    ) -> Dataset:
        """Draw a random small dataset (see :func:`build_dataset`)."""
        sources, claims = build_dataset(
            DrawChooser(draw),
            max_sources=max_sources,
            max_items=max_items,
            max_values_per_item=max_values_per_item,
        )
        builder = DatasetBuilder()
        for source in sources:
            builder.ensure_source(source)
        for source, item, value in claims:
            builder.add(source, item, value)
        return builder.build()

    @st.composite
    def worlds(draw, max_sources: int = 8, max_items: int = 12):
        """Draw a (dataset, probabilities, accuracies) detection problem."""
        return random_world(
            DrawChooser(draw), max_sources=max_sources, max_items=max_items
        ).materialize()

    @st.composite
    def adversarial_worlds(draw, max_sources: int = 6, max_items: int = 8):
        """Worlds engineered to sit on the bound scans' decision edges."""
        return adversarial_world(
            DrawChooser(draw), max_sources=max_sources, max_items=max_items
        ).materialize()

    _strategies = {
        "probabilities": probabilities,
        "accuracies": accuracies,
        "datasets": datasets,
        "worlds": worlds,
        "adversarial_worlds": adversarial_worlds,
    }
    return _strategies


def __getattr__(name: str):
    if name in _STRATEGY_EXPORTS:
        return _hypothesis_strategies()[name]
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
