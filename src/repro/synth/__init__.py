"""Synthetic world generation: configurable claims with planted copying."""

from .generator import GeneratorConfig, SyntheticWorld, generate
from .profiles import (
    PROFILES,
    book_cs,
    book_full,
    make_profile,
    stock_1day,
    stock_2wk,
)

__all__ = [
    "GeneratorConfig",
    "PROFILES",
    "SyntheticWorld",
    "book_cs",
    "book_full",
    "generate",
    "make_profile",
    "stock_1day",
    "stock_2wk",
]
