"""Synthetic world generator with planted copying.

The paper's datasets (AbeBooks crawls, Deep-Web stock quotes) are not
redistributable, so the benchmark harness generates worlds with the same
structural marginals (see DESIGN.md, "Substitutions"):

* a domain of items, each with one true value and ``n_false_values``
  candidate false values;
* *independent* sources with configurable accuracy and coverage
  distributions — coverage is the lever that separates the book regime
  (heavy-tailed: most sources tiny, a few aggregators) from the stock
  regime (everyone covers most items);
* *copier* groups: each group has an independent original and several
  copiers that copy a ``copy_selectivity`` fraction of an upstream
  member's claims — errors included, which is exactly the signal copy
  detection keys on — and fill the rest of their coverage with their own
  (error-prone) claims.  With ``chain_copying`` a copier may copy from a
  previously created copier, yielding transitive copying.

Everything is driven by a seeded :class:`numpy.random.Generator`; the same
config and seed always produce byte-identical datasets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from ..data import Dataset, DatasetBuilder, GoldStandard

CoverageModel = Literal["zipf", "uniform"]


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the synthetic world.

    Attributes:
        n_items: number of data items.
        n_independent_sources: sources drawn independently of each other.
        n_false_values: size of each item's false-value domain (should
            match ``CopyParams.n`` when running detection).
        accuracy_range: independent sources draw accuracy uniformly from
            this range.
        coverage_model: ``"zipf"`` draws heavy-tailed coverage (book
            regime); ``"uniform"`` draws from ``coverage_range`` (stock
            regime).
        coverage_range: (min, max) fraction of items covered per source.
        zipf_exponent: tail exponent for the zipf coverage model (larger
            means more tiny sources).
        n_copier_groups: number of planted copying groups.
        copiers_per_group: copiers in each group.
        copy_selectivity: probability a copier copies a given upstream
            item (the model's ``s``).
        copier_accuracy: accuracy of a copier's own (non-copied) claims.
        copier_extra_coverage: fraction of items a copier adds from its
            own observation on top of the copied ones.
        chain_copying: allow copiers to copy from earlier copiers in
            their group (creates transitive copying).
        false_value_skew: 0 draws false values uniformly (the base
            model's assumption); larger values skew picks toward
            low-numbered false values with Zipf weight
            ``1/(k+1)^skew`` — the "popular falsehood" regime the
            popularity-aware model (paper footnote 2) targets.
        gold_size: number of items exposed in the gold standard.
        seed: RNG seed.
    """

    n_items: int = 1000
    n_independent_sources: int = 40
    n_false_values: int = 50
    accuracy_range: tuple[float, float] = (0.55, 0.95)
    coverage_model: CoverageModel = "uniform"
    coverage_range: tuple[float, float] = (0.5, 1.0)
    zipf_exponent: float = 1.6
    n_copier_groups: int = 3
    copiers_per_group: int = 2
    copy_selectivity: float = 0.8
    copier_accuracy: float = 0.6
    copier_extra_coverage: float = 0.1
    chain_copying: bool = True
    false_value_skew: float = 0.0
    gold_size: int = 200
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_items < 1:
            raise ValueError("n_items must be positive")
        if self.n_independent_sources < 1:
            raise ValueError("need at least one independent source")
        if not 0.0 < self.copy_selectivity <= 1.0:
            raise ValueError("copy_selectivity must be in (0, 1]")
        low, high = self.accuracy_range
        if not 0.0 < low <= high < 1.0:
            raise ValueError("accuracy_range must satisfy 0 < low <= high < 1")


@dataclass
class SyntheticWorld:
    """A generated dataset plus all the ground truth the generator knows.

    Attributes:
        dataset: the claims.
        gold: gold standard over ``config.gold_size`` items.
        copy_pairs: planted *directed* copying as ``(copier, original)``
            source-name pairs (direct edges only; transitive pairs follow
            from chains).
        true_accuracies: realised accuracy per source name — the fraction
            of its claims that are true (useful for diagnostics).
        config: the generating configuration.
    """

    dataset: Dataset
    gold: GoldStandard
    copy_pairs: set[tuple[str, str]]
    true_accuracies: dict[str, float]
    config: GeneratorConfig

    def copy_pair_ids(self) -> set[tuple[int, int]]:
        """Planted copying pairs as sorted source-id tuples (undirected)."""
        ids = {name: i for i, name in enumerate(self.dataset.source_names)}
        return {
            (min(ids[a], ids[b]), max(ids[a], ids[b]))
            for a, b in self.copy_pairs
        }


def _true_value(item: int) -> str:
    return f"i{item}/true"


def _false_value(item: int, k: int) -> str:
    return f"i{item}/f{k}"


class _WorldBuilder:
    """Internal state while generating one world."""

    def __init__(self, config: GeneratorConfig):
        self.config = config
        self.rng = np.random.default_rng(config.seed)
        self.builder = DatasetBuilder()
        self.claims: dict[str, dict[int, str]] = {}
        self.copy_pairs: set[tuple[str, str]] = set()

    def _sample_items(self, count: int) -> np.ndarray:
        count = int(min(max(count, 1), self.config.n_items))
        return self.rng.choice(self.config.n_items, size=count, replace=False)

    def _coverage_count(self) -> int:
        cfg = self.config
        if cfg.coverage_model == "uniform":
            fraction = self.rng.uniform(*cfg.coverage_range)
        else:  # zipf-style heavy tail, clipped into the coverage range
            raw = self.rng.pareto(cfg.zipf_exponent) + 1.0
            low, high = cfg.coverage_range
            fraction = min(low * raw, high)
        return max(int(round(fraction * cfg.n_items)), 1)

    def _false_pick_weights(self) -> np.ndarray | None:
        cfg = self.config
        if cfg.false_value_skew <= 0.0:
            return None
        ranks = np.arange(1, cfg.n_false_values + 1, dtype=float)
        weights = ranks ** (-cfg.false_value_skew)
        return weights / weights.sum()

    def _own_claims(self, items: np.ndarray, accuracy: float) -> dict[int, str]:
        """Claims a source makes from its own observation of the world."""
        cfg = self.config
        is_true = self.rng.random(len(items)) < accuracy
        weights = self._false_pick_weights()
        if weights is None:
            false_picks = self.rng.integers(0, cfg.n_false_values, size=len(items))
        else:
            false_picks = self.rng.choice(
                cfg.n_false_values, size=len(items), p=weights
            )
        claims: dict[int, str] = {}
        for item, ok, pick in zip(items.tolist(), is_true.tolist(), false_picks.tolist()):
            claims[item] = _true_value(item) if ok else _false_value(item, pick)
        return claims

    def add_independent(self, name: str) -> None:
        accuracy = self.rng.uniform(*self.config.accuracy_range)
        items = self._sample_items(self._coverage_count())
        self.claims[name] = self._own_claims(items, accuracy)

    def add_copier(self, name: str, upstream: str) -> None:
        cfg = self.config
        upstream_claims = self.claims[upstream]
        copied: dict[int, str] = {}
        mask = self.rng.random(len(upstream_claims)) < cfg.copy_selectivity
        for (item, value), take in zip(upstream_claims.items(), mask.tolist()):
            if take:
                copied[item] = value
        extra = self._sample_items(int(cfg.copier_extra_coverage * cfg.n_items))
        own_items = np.array(
            [item for item in extra.tolist() if item not in copied], dtype=int
        )
        own = (
            self._own_claims(own_items, cfg.copier_accuracy)
            if len(own_items)
            else {}
        )
        claims = dict(own)
        claims.update(copied)  # copied values win where they overlap
        self.claims[name] = claims
        self.copy_pairs.add((name, upstream))

    def build(self) -> SyntheticWorld:
        cfg = self.config
        for name in sorted(self.claims):
            self.builder.ensure_source(name)
        for name, claims in self.claims.items():
            for item, value in claims.items():
                self.builder.add(name, f"item{item}", value)
        dataset = self.builder.build()

        gold_items = self.rng.choice(
            cfg.n_items, size=min(cfg.gold_size, cfg.n_items), replace=False
        )
        gold = GoldStandard(
            truths={f"item{i}": _true_value(i) for i in gold_items.tolist()}
        )
        true_accuracies = {
            name: (
                sum(1 for item, v in claims.items() if v == _true_value(item))
                / len(claims)
                if claims
                else 0.0
            )
            for name, claims in self.claims.items()
        }
        return SyntheticWorld(
            dataset=dataset,
            gold=gold,
            copy_pairs=self.copy_pairs,
            true_accuracies=true_accuracies,
            config=cfg,
        )


def generate(config: GeneratorConfig) -> SyntheticWorld:
    """Generate a synthetic world from a configuration.

    Source naming: independent sources are ``src000``, ``src001``, ...;
    copiers are ``copyG.K`` for group ``G``, member ``K``.  Originals are
    drawn from the *large* end of the coverage distribution (skipping the
    very top) — in the wild, syndicators copy sizeable aggregators, and a
    tiny original would leave copiers with too little shared data to ever
    be detectable.
    """
    world = _WorldBuilder(config)
    for i in range(config.n_independent_sources):
        world.add_independent(f"src{i:03d}")
    by_size = sorted(world.claims, key=lambda name: -len(world.claims[name]))
    # Skip the very largest sources: copying the single dominant
    # aggregator would let one source's errors swamp the whole world.
    offset = max(1, len(by_size) // 10)

    rng = world.rng
    for group in range(config.n_copier_groups):
        original = by_size[(offset + group) % len(by_size)]
        members = [original]
        for k in range(config.copiers_per_group):
            name = f"copy{group}.{k}"
            if config.chain_copying and len(members) > 1:
                upstream = members[int(rng.integers(0, len(members)))]
            else:
                upstream = original
            world.add_copier(name, upstream)
            members.append(name)
    return world.build()
