"""Dataset profiles shaped like the paper's four evaluation datasets.

Table V of the paper:

    ============  ======  ========  =============  ==============
    dataset       #Srcs   #Items    #Dist-values   #Index-entries
    ============  ======  ========  =============  ==============
    Book-CS          894     2,528        14,930          7,398
    Stock-1day        55    16,000       104,611         40,834
    Book-full      3,182   147,431       162,961         48,683
    Stock-2wk         55   160,000       915,118        405,537
    ============  ======  ========  =============  ==============

Each profile reproduces the dataset's *regime* rather than its absolute
size:

* **book** profiles — many sources with heavy-tailed coverage (the paper:
  85% of Book-CS sources cover at most 1% of the books), so the vast
  majority of source pairs share nothing and INDEX shines; Book-full has
  far fewer conflicting values per item (1.1 vs 5.9).
* **stock** profiles — few sources, all covering most items (the paper:
  80% of stock sources cover over half the items), so every pair shares
  thousands of items and the BOUND family's early termination matters.

Every profile takes a ``scale`` factor multiplying the item and source
counts, because pure-Python PAIRWISE at full Table V size takes hours
where the paper's Java took minutes; EXPERIMENTS.md records the scales
used.  At ``scale=1.0`` the source/item counts match Table V.
"""

from __future__ import annotations

from .generator import GeneratorConfig, SyntheticWorld, generate

#: Names usable with :func:`make_profile` and the CLI/benchmarks.
PROFILES = ("book_cs", "book_full", "stock_1day", "stock_2wk")


def _scaled(value: int, scale: float, minimum: int = 1) -> int:
    return max(int(round(value * scale)), minimum)


def book_cs(scale: float = 1.0, seed: int = 7) -> SyntheticWorld:
    """A Book-CS-shaped world: many tiny sources, strong conflicts.

    894 sources x 2,528 items at ``scale=1.0``; copier cliques planted
    among mid-size sources.
    """
    config = GeneratorConfig(
        n_items=_scaled(2528, scale),
        n_independent_sources=_scaled(894, scale, minimum=10) - 4 * 3,
        n_false_values=50,
        accuracy_range=(0.35, 0.85),
        coverage_model="zipf",
        coverage_range=(0.003, 0.5),
        zipf_exponent=1.0,
        n_copier_groups=4,
        copiers_per_group=3,
        copy_selectivity=0.8,
        copier_accuracy=0.55,
        copier_extra_coverage=0.02,
        gold_size=100,
        seed=seed,
    )
    return generate(config)


def book_full(scale: float = 1.0, seed: int = 11) -> SyntheticWorld:
    """A Book-full-shaped world: even more sources, sparse conflicts.

    3,182 sources x 147,431 items at ``scale=1.0``; on average only ~1.1
    conflicting values per item, achieved with higher accuracies and very
    low coverage.
    """
    config = GeneratorConfig(
        n_items=_scaled(147431, scale),
        n_independent_sources=_scaled(3182, scale, minimum=20) - 5 * 3,
        n_false_values=50,
        accuracy_range=(0.75, 0.99),
        coverage_model="zipf",
        coverage_range=(0.0008, 0.3),
        zipf_exponent=1.2,
        n_copier_groups=5,
        copiers_per_group=3,
        copy_selectivity=0.8,
        copier_accuracy=0.7,
        copier_extra_coverage=0.005,
        gold_size=100,
        seed=seed,
    )
    return generate(config)


def stock_1day(scale: float = 1.0, seed: int = 13) -> SyntheticWorld:
    """A Stock-1day-shaped world: 55 dense sources, heavy conflicts.

    55 sources x 16,000 items at ``scale=1.0`` (the item count scales;
    the source count stays 55 until scale drops below ~0.5, mirroring how
    the paper's stock sources are a fixed panel).
    """
    n_sources = 55 if scale >= 0.1 else max(20, _scaled(55, scale * 10))
    config = GeneratorConfig(
        n_items=_scaled(16000, scale),
        n_independent_sources=n_sources - 3 * 2,
        n_false_values=50,
        accuracy_range=(0.7, 0.97),
        coverage_model="uniform",
        coverage_range=(0.5, 1.0),
        n_copier_groups=3,
        copiers_per_group=2,
        copy_selectivity=0.8,
        copier_accuracy=0.6,
        copier_extra_coverage=0.3,
        gold_size=200,
        seed=seed,
    )
    return generate(config)


def stock_2wk(scale: float = 1.0, seed: int = 17) -> SyntheticWorld:
    """A Stock-2wk-shaped world: the stock panel over 10x the items."""
    n_sources = 55 if scale >= 0.1 else max(20, _scaled(55, scale * 10))
    config = GeneratorConfig(
        n_items=_scaled(160000, scale),
        n_independent_sources=n_sources - 3 * 2,
        n_false_values=50,
        accuracy_range=(0.7, 0.97),
        coverage_model="uniform",
        coverage_range=(0.5, 1.0),
        n_copier_groups=3,
        copiers_per_group=2,
        copy_selectivity=0.8,
        copier_accuracy=0.6,
        copier_extra_coverage=0.3,
        gold_size=200,
        seed=seed,
    )
    return generate(config)


_PROFILE_FUNCS = {
    "book_cs": book_cs,
    "book_full": book_full,
    "stock_1day": stock_1day,
    "stock_2wk": stock_2wk,
}


def make_profile(name: str, scale: float = 1.0, seed: int | None = None) -> SyntheticWorld:
    """Build a named profile (see :data:`PROFILES`).

    Raises:
        ValueError: for an unknown profile name.
    """
    try:
        func = _PROFILE_FUNCS[name]
    except KeyError:
        raise ValueError(f"unknown profile {name!r}; expected one of {PROFILES}")
    if seed is None:
        return func(scale)
    return func(scale, seed=seed)
