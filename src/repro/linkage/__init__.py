"""Record linkage on the paper's indexed weighted-evidence machinery."""

from .linker import (
    LinkageConfig,
    LinkageResult,
    LinkDecision,
    link_records,
)

__all__ = [
    "LinkDecision",
    "LinkageConfig",
    "LinkageResult",
    "link_records",
]
