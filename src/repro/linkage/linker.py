"""Record linkage via the paper's indexed weighted-evidence machinery.

The introduction notes that the index-and-prune techniques "shed light on
other applications that require computing similarity by accumulating
weighted evidence; for example, in record linkage different attributes
may have different weights".  This module instantiates that remark as a
small Fellegi-Sunter linker built on the same three ideas:

* an inverted index over ``(attribute, value)`` pairs shared by at least
  two records — records that share nothing are never compared;
* entries processed in decreasing *evidence weight*: agreeing on a rare
  value is strong evidence of identity (``ln(m / u(v))`` with ``u(v)``
  the value's background frequency), exactly as sharing a low-probability
  value is strong evidence of copying;
* early termination with running bounds: once the optimistic bound of a
  pair falls below the non-match threshold (or the pessimistic bound
  clears the match threshold), remaining attributes are skipped.

The decision model is classical Fellegi-Sunter: per-attribute match
probability ``m`` (how often true duplicates agree) against value-level
chance agreement ``u(v)``; disagreement contributes
``ln((1 - m) / (1 - u))``.  Scores are log-likelihood ratios, thresholds
are log-odds, and the three-way decision (match / possible / non-match)
falls out just like copy / undecided / no-copy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping

Record = Mapping[str, str]


@dataclass(frozen=True)
class LinkageConfig:
    """Knobs of the linker.

    Attributes:
        m: probability two records of the same entity agree on an
            attribute (typos and staleness make it < 1).
        match_threshold: log-likelihood ratio above which a pair is
            declared a match (the default ~ 55:1 odds).
        nonmatch_threshold: ratio below which it is declared a non-match
            (between the two lies the clerical-review "possible" band).
        early_termination: skip remaining attributes once the running
            bounds force a verdict (the paper's Section IV idea).
        u_floor: lower bound on chance-agreement probability, keeping
            weights finite for one-off values.
    """

    m: float = 0.95
    match_threshold: float = 4.0
    nonmatch_threshold: float = 0.0
    early_termination: bool = True
    u_floor: float = 1e-4

    def __post_init__(self) -> None:
        if not 0.0 < self.m < 1.0:
            raise ValueError(f"m must be in (0, 1), got {self.m}")
        if self.match_threshold <= self.nonmatch_threshold:
            raise ValueError("match_threshold must exceed nonmatch_threshold")


@dataclass(frozen=True)
class LinkDecision:
    """Verdict for one record pair."""

    record_a: int
    record_b: int
    score: float  #: accumulated log-likelihood ratio (or its bound)
    verdict: str  #: "match" | "possible" | "nonmatch"
    early: bool = False


@dataclass
class LinkageResult:
    """All pairs that shared at least one indexed value."""

    decisions: dict[tuple[int, int], LinkDecision] = field(default_factory=dict)
    comparisons: int = 0  #: attribute-level evidence accumulations
    pairs_skipped_early: int = 0

    def matches(self) -> set[tuple[int, int]]:
        return {
            pair
            for pair, d in self.decisions.items()
            if d.verdict == "match"
        }

    def possibles(self) -> set[tuple[int, int]]:
        return {
            pair
            for pair, d in self.decisions.items()
            if d.verdict == "possible"
        }


class _IndexEntry:
    __slots__ = ("weight", "records")

    def __init__(self, weight: float, records: list[int]):
        self.weight = weight
        self.records = records


def link_records(
    records: Iterable[Record],
    config: LinkageConfig | None = None,
) -> LinkageResult:
    """Find duplicate records via indexed Fellegi-Sunter scoring.

    Args:
        records: mappings ``attribute -> value``; record ids are their
            positions.  Missing attributes are simply absent.
        config: linker configuration.

    Returns:
        A :class:`LinkageResult` with a decision for every pair of
        records that agree on at least one indexed value.
    """
    cfg = config or LinkageConfig()
    record_list = [dict(r) for r in records]

    # ------------------------------------------------------------------
    # Value statistics -> evidence weights.
    # ------------------------------------------------------------------
    value_records: dict[tuple[str, str], list[int]] = {}
    attr_counts: dict[str, int] = {}
    for rid, record in enumerate(record_list):
        for attr, value in record.items():
            value_records.setdefault((attr, value), []).append(rid)
            attr_counts[attr] = attr_counts.get(attr, 0) + 1

    m = cfg.m
    entries: list[_IndexEntry] = []
    disagreement_weight: dict[str, float] = {}
    for attr, count in attr_counts.items():
        # Average chance agreement for the attribute (used for the
        # disagreement weight): sum over values of (freq)^2.
        chance = 0.0
        for (a, _), recs in value_records.items():
            if a == attr:
                chance += (len(recs) / count) ** 2
        chance = min(max(chance, cfg.u_floor), 1.0 - cfg.u_floor)
        disagreement_weight[attr] = math.log((1.0 - m) / (1.0 - chance))

    for (attr, _value), recs in value_records.items():
        if len(recs) < 2:
            continue
        u = min(max(len(recs) / max(attr_counts[attr], 1), cfg.u_floor), 1.0)
        entries.append(_IndexEntry(math.log(m / u), recs))
    entries.sort(key=lambda e: -e.weight)

    # Shared-attribute counts per candidate pair (the linkage analogue of
    # l(S1, S2)): how many attributes both records populate.
    def shared_attrs(a: int, b: int) -> int:
        ra, rb = record_list[a], record_list[b]
        small, large = (ra, rb) if len(ra) <= len(rb) else (rb, ra)
        return sum(1 for attr in small if attr in large)

    # ------------------------------------------------------------------
    # Scan entries strongest-first, accumulating per-pair scores.
    # ------------------------------------------------------------------
    worst_disagreement = min(disagreement_weight.values(), default=-1.0)
    result = LinkageResult()
    state: dict[tuple[int, int], list[float]] = {}  # [score, n_agree, done]
    suffix_max = [0.0] * (len(entries) + 1)
    for i in range(len(entries) - 1, -1, -1):
        suffix_max[i] = max(entries[i].weight, suffix_max[i + 1])

    for position, entry in enumerate(entries):
        weight = entry.weight
        recs = entry.records
        next_max = max(suffix_max[position + 1], 0.0)
        k = len(recs)
        for i in range(k):
            a = recs[i]
            for j in range(i + 1, k):
                pair = (a, recs[j])
                cell = state.get(pair)
                if cell is None:
                    cell = [0.0, 0.0, 0.0]
                    state[pair] = cell
                if cell[2]:
                    continue  # already decided early
                cell[0] += weight
                cell[1] += 1.0
                result.comparisons += 1
                if not cfg.early_termination:
                    continue
                total = shared_attrs(*pair)
                remaining = total - int(cell[1])
                optimistic = cell[0] + remaining * next_max
                pessimistic = cell[0] + remaining * worst_disagreement
                if pessimistic >= cfg.match_threshold:
                    cell[2] = 1.0
                    result.pairs_skipped_early += 1
                    result.decisions[pair] = LinkDecision(
                        pair[0], pair[1], pessimistic, "match", early=True
                    )
                elif optimistic < cfg.nonmatch_threshold:
                    cell[2] = 1.0
                    result.pairs_skipped_early += 1
                    result.decisions[pair] = LinkDecision(
                        pair[0], pair[1], optimistic, "nonmatch", early=True
                    )

    # ------------------------------------------------------------------
    # Finalise undecided pairs with exact disagreement penalties.
    # ------------------------------------------------------------------
    for pair, (score, n_agree, done) in state.items():
        if done:
            continue
        ra, rb = record_list[pair[0]], record_list[pair[1]]
        for attr, value in ra.items():
            other = rb.get(attr)
            if other is not None and other != value:
                score += disagreement_weight[attr]
                result.comparisons += 1
        if score >= cfg.match_threshold:
            verdict = "match"
        elif score < cfg.nonmatch_threshold:
            verdict = "nonmatch"
        else:
            verdict = "possible"
        result.decisions[pair] = LinkDecision(pair[0], pair[1], score, verdict)
    return result
