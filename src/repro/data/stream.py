"""Claim deltas and the append-only ledger behind the streaming service.

The batch pipeline consumes an immutable :class:`~repro.data.Dataset`
built once; a long-running service instead receives a continuous feed of
**claim deltas** — "source S now claims value V for item I".  This module
provides the intake layer between the two worlds:

* :class:`ClaimDelta` — one immutable re-report, in the same
  ``(source, item, value)`` string vocabulary as
  :meth:`DatasetBuilder.add` (last-writer-wins per ``(source, item)``).
* :class:`ClaimLedger` — the accumulated claim state.  ``apply()`` folds
  a batch of deltas in and reports exactly what changed;
  ``snapshot()`` freezes the current state into a :class:`Dataset`.

**Determinism contract.**  The ledger interns sources, items and values
append-only, in first-appearance order — byte-for-byte the same rule as
:class:`~repro.data.dataset.DatasetBuilder`.  Feeding the same deltas in
the same order therefore yields the *identical* ``Dataset`` (same ids,
same iteration order) whether they arrive through a live
:class:`~repro.streaming.StreamingService`, a synchronous
:func:`~repro.streaming.replay_epochs` call, or one big
``DatasetBuilder`` pass.  This is the foundation of the streamed-vs-batch
lockstep parity the test suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from .dataset import Dataset, DatasetBuilder


@dataclass(frozen=True)
class ClaimDelta:
    """One streamed re-report: ``source`` now claims ``value`` for ``item``.

    Attributes:
        source: source name (interned on first appearance).
        item: data-item name.
        value: the claimed value string.  A repeated ``(source, item)``
            overwrites the previous claim (last-writer-wins), exactly
            like :meth:`DatasetBuilder.add`.
    """

    source: str
    item: str
    value: str

    @classmethod
    def from_json(cls, obj: dict) -> "ClaimDelta":
        """Build a delta from a ``{"source", "item", "value"}`` mapping.

        Raises:
            ValueError: when a field is missing or not a string.
        """
        try:
            source, item, value = obj["source"], obj["item"], obj["value"]
        except (KeyError, TypeError) as exc:
            raise ValueError(
                f"a claim needs source/item/value fields, got {obj!r}"
            ) from exc
        if not all(isinstance(x, str) for x in (source, item, value)):
            raise ValueError(f"claim fields must be strings, got {obj!r}")
        return cls(source=source, item=item, value=value)

    def to_json(self) -> dict:
        """The wire form consumed by :meth:`from_json`."""
        return {"source": self.source, "item": self.item, "value": self.value}


@dataclass(frozen=True)
class LedgerUpdate:
    """What one :meth:`ClaimLedger.apply` batch actually changed.

    Attributes:
        n_deltas: deltas in the batch (after the caller's coalescing).
        changed_claims: claims that are new or whose value flipped —
            the batch's *effective* size.  Zero means the batch was pure
            confirmation and detection state is provably unchanged.
        confirmations: deltas that restated the existing claim verbatim.
        new_sources: sources first seen in this batch.
        new_items: items first seen in this batch.
        new_values: distinct ``(item, value)`` pairs first seen.
    """

    n_deltas: int
    changed_claims: int
    confirmations: int
    new_sources: int
    new_items: int
    new_values: int

    @property
    def is_noop(self) -> bool:
        """True when the batch cannot have moved any verdict or truth."""
        return self.changed_claims == 0 and self.new_sources == 0


class ClaimLedger:
    """Append-only accumulation of claims with stable interning.

    The ledger wraps a :class:`DatasetBuilder` and adds the two things a
    long-running service needs: per-batch change accounting
    (:class:`LedgerUpdate`) and a monotonically increasing ``version``
    that advances only when a batch changed something.

    Args:
        base: optionally, an existing dataset to seed the ledger with
            (its claims are replayed in id order, so the seeded ledger's
            first snapshot reproduces ``base``'s interning exactly).
    """

    def __init__(self, base: Dataset | None = None):
        self._builder = DatasetBuilder()
        self._version = 0
        self._snapshot: Dataset | None = None
        self._snapshot_version = -1
        if base is not None:
            for name in base.source_names:
                self._builder.ensure_source(name)
            for source_id, item_id, value_id in base.iter_claims():
                self._builder.add(
                    base.source_names[source_id],
                    base.item_names[item_id],
                    base.value_label[value_id],
                )
            self._version = 1 if (base.source_names or base.item_names) else 0

    @property
    def version(self) -> int:
        """Monotone claim-state version; bumps once per effective batch."""
        return self._version

    def apply(self, deltas: Iterable[ClaimDelta]) -> LedgerUpdate:
        """Fold a batch of deltas into the ledger, in order.

        Returns the batch's :class:`LedgerUpdate`; the ledger ``version``
        advances exactly when the update is not a no-op.
        """
        builder = self._builder
        n = changed = confirmed = new_sources = new_items = new_values = 0
        for delta in deltas:
            n += 1
            if delta.source not in builder._source_ids:
                new_sources += 1
            if delta.item not in builder._item_ids:
                new_items += 1
            source_id = builder.ensure_source(delta.source)
            item_id = builder.ensure_item(delta.item)
            value_key = (item_id, delta.value)
            is_new_value = value_key not in builder._value_ids
            old = builder._claims[source_id].get(item_id)
            builder.add(delta.source, delta.item, delta.value)
            if is_new_value:
                new_values += 1
            if old is not None and builder._claims[source_id][item_id] == old:
                confirmed += 1
            else:
                changed += 1
        update = LedgerUpdate(
            n_deltas=n,
            changed_claims=changed,
            confirmations=confirmed,
            new_sources=new_sources,
            new_items=new_items,
            new_values=new_values,
        )
        if not update.is_noop:
            self._version += 1
        return update

    def snapshot(self) -> Dataset:
        """Freeze the current claim state into an immutable ``Dataset``.

        Snapshots are cached per version, so repeated calls between
        batches are free and return the *same object* — which is what
        lets dataset-keyed caches (shared-item counts, workspaces)
        recognise an unchanged world.
        """
        if self._snapshot is None or self._snapshot_version != self._version:
            self._snapshot = self._builder.build()
            self._snapshot_version = self._version
        return self._snapshot

    def __len__(self) -> int:
        """Total number of live ``(source, item)`` claims."""
        return sum(len(c) for c in self._builder._claims)


def coalesce_deltas(deltas: Sequence[ClaimDelta]) -> list[ClaimDelta]:
    """Collapse a burst to one delta per ``(source, item)``.

    Keeps the **first** arrival position (so interning order — and with
    it the lockstep parity contract — is insensitive to how many times a
    bursty feed re-sent the claim) with the **last** value
    (last-writer-wins).  The micro-batcher applies this to every epoch
    before handing it to the engine.
    """
    out: list[ClaimDelta] = []
    position: dict[tuple[str, str], int] = {}
    for delta in deltas:
        key = (delta.source, delta.item)
        at = position.get(key)
        if at is None:
            position[key] = len(out)
            out.append(delta)
        elif out[at].value != delta.value:
            out[at] = delta
    return out
