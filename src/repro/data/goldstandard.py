"""Gold standards: item -> true value mappings used to score truth finding.

The paper evaluates *fusion accuracy* against small manually-verified gold
standards (verified author lists for Book-CS, a majority vote of five
authoritative sites for Stock-1day).  Our synthetic generators emit the
planted ground truth in the same form.
"""

from __future__ import annotations

from dataclasses import dataclass

from .dataset import Dataset


@dataclass(frozen=True)
class GoldStandard:
    """A mapping from item name to the (single) true value label.

    The gold standard may cover only a subset of items — the paper's gold
    standards cover 100-200 items out of thousands.
    """

    truths: dict[str, str]

    def __len__(self) -> int:
        return len(self.truths)

    def __contains__(self, item: str) -> bool:
        return item in self.truths

    def true_value_ids(self, dataset: Dataset) -> dict[int, int | None]:
        """Resolve the gold standard against a dataset's interned ids.

        Returns a mapping ``item_id -> value_id`` for every gold item that
        appears in the dataset.  If the true value was never claimed by any
        source, the value id is ``None`` (no source can be right — the
        fusion result for that item is counted as wrong).
        """
        item_ids = {name: i for i, name in enumerate(dataset.item_names)}
        value_ids = {
            (dataset.value_item[v], dataset.value_label[v]): v
            for v in range(dataset.n_values)
        }
        resolved: dict[int, int | None] = {}
        for item_name, value_label in self.truths.items():
            item_id = item_ids.get(item_name)
            if item_id is None:
                continue
            resolved[item_id] = value_ids.get((item_id, value_label))
        return resolved

    def accuracy_of(self, dataset: Dataset, chosen: dict[int, int]) -> float:
        """Fraction of gold items on which ``chosen`` picks the true value.

        Args:
            dataset: the dataset the ids refer to.
            chosen: mapping ``item_id -> value_id`` produced by a fusion
                algorithm (see :mod:`repro.fusion`).

        Returns:
            Fusion accuracy in ``[0, 1]``; ``0.0`` if no gold item appears
            in the dataset.
        """
        resolved = self.true_value_ids(dataset)
        if not resolved:
            return 0.0
        correct = sum(
            1
            for item_id, true_vid in resolved.items()
            if true_vid is not None and chosen.get(item_id) == true_vid
        )
        return correct / len(resolved)
