"""Core data model: sources, data items, and the claims that connect them.

The copy-detection literature (Dong et al. 2009, Li et al. 2015) works on a
simple relational abstraction: a domain of *data items* (e.g. "capital of
NJ", "closing price of AAPL on 7/7"), a set of *sources*, and for each
source a partial mapping from items to *values*.  Schema mapping and entity
resolution are assumed done, so item identity is shared across sources.

This module provides :class:`Dataset`, an immutable, integer-interned
representation of that abstraction, plus :class:`DatasetBuilder` for
constructing one incrementally.  All algorithms in :mod:`repro.core`
operate on integer source/item/value ids for speed; the string names are
kept for presentation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence


@dataclass(frozen=True)
class DatasetStats:
    """Summary statistics of a dataset, matching the columns of Table V.

    Attributes:
        n_sources: number of sources (``#Srcs``).
        n_items: number of distinct data items claimed by at least one
            source (``#Items``).
        n_distinct_values: number of distinct ``(item, value)`` pairs
            (``#Dist-values``).
        n_index_entries: number of ``(item, value)`` pairs provided by at
            least two sources, i.e. the size of the inverted index
            (``#Index-entries``).
        n_claims: total number of ``(source, item, value)`` triples.
        avg_conflicts_per_item: average number of distinct values per item.
    """

    n_sources: int
    n_items: int
    n_distinct_values: int
    n_index_entries: int
    n_claims: int
    avg_conflicts_per_item: float


class Dataset:
    """An immutable collection of claims ``source -> (item -> value)``.

    Values are interned globally: each distinct ``(item, value-string)``
    pair receives a unique integer *value id*.  Two sources provide "the
    same value" for an item exactly when their claims for that item map to
    the same value id.

    Instances should be created through :class:`DatasetBuilder` or the
    helpers in :mod:`repro.synth`.
    """

    __slots__ = (
        "source_names",
        "item_names",
        "claims",
        "value_item",
        "value_label",
        "_providers",
        "_items_per_source",
    )

    def __init__(
        self,
        source_names: Sequence[str],
        item_names: Sequence[str],
        claims: Sequence[Mapping[int, int]],
        value_item: Sequence[int],
        value_label: Sequence[str],
    ):
        if len(claims) != len(source_names):
            raise ValueError(
                "claims must have one mapping per source "
                f"({len(claims)} != {len(source_names)})"
            )
        self.source_names = list(source_names)
        self.item_names = list(item_names)
        self.claims = [dict(c) for c in claims]
        self.value_item = list(value_item)
        self.value_label = list(value_label)
        self._providers: list[list[int]] | None = None
        self._items_per_source: list[int] | None = None

    # ------------------------------------------------------------------
    # Basic dimensions
    # ------------------------------------------------------------------
    @property
    def n_sources(self) -> int:
        """Number of sources."""
        return len(self.source_names)

    @property
    def n_items(self) -> int:
        """Number of data items."""
        return len(self.item_names)

    @property
    def n_values(self) -> int:
        """Number of distinct ``(item, value)`` pairs."""
        return len(self.value_item)

    # ------------------------------------------------------------------
    # Derived structures (computed lazily, cached)
    # ------------------------------------------------------------------
    @property
    def providers(self) -> list[list[int]]:
        """For each value id, the sorted list of source ids providing it."""
        if self._providers is None:
            providers: list[list[int]] = [[] for _ in range(self.n_values)]
            for source_id, claim in enumerate(self.claims):
                for value_id in claim.values():
                    providers[value_id].append(source_id)
            for lst in providers:
                lst.sort()
            self._providers = providers
        return self._providers

    @property
    def items_per_source(self) -> list[int]:
        """``|D-bar(S)|`` — the number of items each source provides."""
        if self._items_per_source is None:
            self._items_per_source = [len(c) for c in self.claims]
        return self._items_per_source

    def values_of_item(self, item_id: int) -> list[int]:
        """Return the distinct value ids observed for ``item_id``."""
        return [
            value_id
            for value_id in range(self.n_values)
            if self.value_item[value_id] == item_id
        ]

    def item_value_table(self) -> list[list[int]]:
        """Return, for each item id, the list of its observed value ids."""
        table: list[list[int]] = [[] for _ in range(self.n_items)]
        for value_id, item_id in enumerate(self.value_item):
            table[item_id].append(value_id)
        return table

    def claim_of(self, source_id: int, item_id: int) -> int | None:
        """Return the value id claimed by a source on an item, if any."""
        return self.claims[source_id].get(item_id)

    def iter_claims(self) -> Iterator[tuple[int, int, int]]:
        """Yield all claims as ``(source_id, item_id, value_id)`` triples."""
        for source_id, claim in enumerate(self.claims):
            for item_id, value_id in claim.items():
                yield source_id, item_id, value_id

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def stats(self) -> DatasetStats:
        """Compute the Table V summary statistics for this dataset."""
        n_claims = sum(len(c) for c in self.claims)
        n_multi = sum(1 for p in self.providers if len(p) >= 2)
        items_claimed = {i for c in self.claims for i in c}
        values_per_item: dict[int, int] = {}
        for item_id in self.value_item:
            values_per_item[item_id] = values_per_item.get(item_id, 0) + 1
        avg_conflicts = (
            sum(values_per_item.values()) / len(values_per_item)
            if values_per_item
            else 0.0
        )
        return DatasetStats(
            n_sources=self.n_sources,
            n_items=len(items_claimed),
            n_distinct_values=self.n_values,
            n_index_entries=n_multi,
            n_claims=n_claims,
            avg_conflicts_per_item=avg_conflicts,
        )

    # ------------------------------------------------------------------
    # Projection (used by the sampling strategies)
    # ------------------------------------------------------------------
    def project_items(self, item_ids: Iterable[int]) -> "Dataset":
        """Return a new dataset restricted to the given item ids.

        Item and value ids are re-interned densely; source ids and names
        are preserved (a source that loses all its items keeps an empty
        claim set so that source indices remain aligned with the parent
        dataset — the sampling experiments compare decisions per source
        pair across the original and the sample).
        """
        keep = set(item_ids)
        builder = DatasetBuilder()
        for name in self.source_names:
            builder.ensure_source(name)
        for source_id, claim in enumerate(self.claims):
            source_name = self.source_names[source_id]
            for item_id, value_id in claim.items():
                if item_id in keep:
                    builder.add(
                        source_name,
                        self.item_names[item_id],
                        self.value_label[value_id],
                    )
        return builder.build()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Dataset(sources={self.n_sources}, items={self.n_items}, "
            f"values={self.n_values})"
        )


@dataclass
class DatasetBuilder:
    """Incremental constructor for :class:`Dataset`.

    Example:
        >>> b = DatasetBuilder()
        >>> b.add("S0", "NJ", "Trenton")
        >>> b.add("S1", "NJ", "Trenton")
        >>> ds = b.build()
        >>> ds.n_sources, ds.n_items, ds.n_values
        (2, 1, 1)
    """

    _source_ids: dict[str, int] = field(default_factory=dict)
    _item_ids: dict[str, int] = field(default_factory=dict)
    _value_ids: dict[tuple[int, str], int] = field(default_factory=dict)
    _claims: list[dict[int, int]] = field(default_factory=list)
    _value_item: list[int] = field(default_factory=list)
    _value_label: list[str] = field(default_factory=list)

    def ensure_source(self, source: str) -> int:
        """Register a source (possibly with no claims) and return its id."""
        source_id = self._source_ids.get(source)
        if source_id is None:
            source_id = len(self._source_ids)
            self._source_ids[source] = source_id
            self._claims.append({})
        return source_id

    def ensure_item(self, item: str) -> int:
        """Register an item and return its id."""
        item_id = self._item_ids.get(item)
        if item_id is None:
            item_id = len(self._item_ids)
            self._item_ids[item] = item_id
        return item_id

    def add(self, source: str, item: str, value: str) -> None:
        """Record that ``source`` claims ``value`` for ``item``.

        A source may claim at most one value per item; a second claim for
        the same item overwrites the first (last-writer-wins), mirroring
        how the crawled datasets were de-duplicated.
        """
        source_id = self.ensure_source(source)
        item_id = self.ensure_item(item)
        key = (item_id, value)
        value_id = self._value_ids.get(key)
        if value_id is None:
            value_id = len(self._value_ids)
            self._value_ids[key] = value_id
            self._value_item.append(item_id)
            self._value_label.append(value)
        self._claims[source_id][item_id] = value_id

    def build(self) -> Dataset:
        """Freeze the builder into a :class:`Dataset`."""
        return Dataset(
            source_names=list(self._source_ids),
            item_names=list(self._item_ids),
            claims=self._claims,
            value_item=self._value_item,
            value_label=self._value_label,
        )
