"""The paper's motivating example (Table I) as a ready-made dataset.

Ten sources describe the capitals of five US states.  Sources S2-S4 copy
from each other, as do S6-S8.  The example is used throughout the paper
(Examples 2.1, 3.3, 3.6, 4.2, 5.1, 5.2 and Tables I-IV); our test suite
checks the library's numbers against every worked figure in those
examples, so this module reproduces the data exactly.
"""

from __future__ import annotations

from .dataset import Dataset, DatasetBuilder
from .goldstandard import GoldStandard

#: Source accuracies from Table I, column "Accu".
MOTIVATING_ACCURACIES: dict[str, float] = {
    "S0": 0.99,
    "S1": 0.99,
    "S2": 0.2,
    "S3": 0.2,
    "S4": 0.4,
    "S5": 0.6,
    "S6": 0.01,
    "S7": 0.25,
    "S8": 0.2,
    "S9": 0.99,
}

#: Claims from Table I.  ``None`` marks a missing value.
_TABLE_I: dict[str, tuple[str | None, ...]] = {
    #        NJ          AZ         NY         FL         TX
    "S0": ("Trenton", "Phoenix", "Albany", None, "Austin"),
    "S1": ("Trenton", "Phoenix", "Albany", "Orlando", "Austin"),
    "S2": ("Atlantic", "Phoenix", "NewYork", "Miami", "Houston"),
    "S3": ("Atlantic", "Phoenix", "NewYork", "Miami", "Arlington"),
    "S4": ("Atlantic", "Phoenix", "NewYork", "Orlando", "Houston"),
    "S5": ("Union", "Tempe", "Albany", "Orlando", "Austin"),
    "S6": (None, "Tempe", "Buffalo", "PalmBay", "Dallas"),
    "S7": ("Trenton", None, "Buffalo", "PalmBay", "Dallas"),
    "S8": ("Trenton", "Tucson", "Buffalo", "PalmBay", "Dallas"),
    "S9": ("Trenton", None, None, "Orlando", "Austin"),
}

_ITEMS = ("NJ", "AZ", "NY", "FL", "TX")

#: The values the example treats as true (non-italic in Table I).
MOTIVATING_TRUTHS: dict[str, str] = {
    "NJ": "Trenton",
    "AZ": "Phoenix",
    "NY": "Albany",
    "FL": "Orlando",
    "TX": "Austin",
}

#: Value probabilities from Table III ("assuming knowledge of value
#: probability").  Keys are ``item.value``.  Values provided by a single
#: source do not appear in the index; they are assigned the probability
#: below when the full claim set needs probabilities (e.g. for PAIRWISE).
MOTIVATING_VALUE_PROBABILITIES: dict[str, float] = {
    "AZ.Tempe": 0.02,
    "NJ.Atlantic": 0.01,
    "TX.Houston": 0.02,
    "NY.NewYork": 0.02,
    "TX.Dallas": 0.02,
    "NY.Buffalo": 0.04,
    "FL.PalmBay": 0.05,
    "FL.Miami": 0.03,
    "AZ.Phoenix": 0.95,
    "NJ.Trenton": 0.97,
    "FL.Orlando": 0.92,
    "NY.Albany": 0.94,
    "TX.Austin": 0.96,
}

#: Probability assigned to singleton values (NJ.Union, AZ.Tucson,
#: TX.Arlington) which Table III omits.  Copy-detection results never
#: depend on it (singletons are never shared) but fusion code needs a
#: complete probability vector.
SINGLETON_PROBABILITY = 0.02

#: The copying relationships planted in the example (unordered pairs).
MOTIVATING_COPY_PAIRS: frozenset[frozenset[str]] = frozenset(
    frozenset(p)
    for p in [
        ("S2", "S3"),
        ("S2", "S4"),
        ("S3", "S4"),
        ("S6", "S7"),
        ("S6", "S8"),
        ("S7", "S8"),
    ]
)


def motivating_example() -> Dataset:
    """Build the Table I dataset (10 sources, 5 items, 16 distinct values)."""
    builder = DatasetBuilder()
    for source, row in _TABLE_I.items():
        builder.ensure_source(source)
        for item, value in zip(_ITEMS, row):
            if value is not None:
                builder.add(source, item, value)
    return builder.build()


def motivating_accuracies(dataset: Dataset) -> list[float]:
    """Return Table I accuracies aligned with the dataset's source ids."""
    return [MOTIVATING_ACCURACIES[name] for name in dataset.source_names]


def motivating_value_probabilities(dataset: Dataset) -> list[float]:
    """Return Table III value probabilities aligned with value ids."""
    probabilities = []
    for value_id in range(dataset.n_values):
        item = dataset.item_names[dataset.value_item[value_id]]
        label = dataset.value_label[value_id]
        probabilities.append(
            MOTIVATING_VALUE_PROBABILITIES.get(
                f"{item}.{label}", SINGLETON_PROBABILITY
            )
        )
    return probabilities


def motivating_gold() -> GoldStandard:
    """Return the example's intended truths as a gold standard."""
    return GoldStandard(truths=dict(MOTIVATING_TRUTHS))
