"""CSV persistence for datasets and gold standards.

Formats follow the layout of the public fusion datasets
(http://lunadong.com/fusionDataSets.htm) reduced to the essentials:

* claims file — one ``source,item,value`` row per claim (header required);
* gold file — one ``item,value`` row per known truth (header required).

Values may contain commas; files are standard RFC-4180 CSV handled by the
:mod:`csv` module.
"""

from __future__ import annotations

import csv
from pathlib import Path

from .dataset import Dataset, DatasetBuilder
from .goldstandard import GoldStandard

_CLAIMS_HEADER = ["source", "item", "value"]
_GOLD_HEADER = ["item", "value"]


def load_claims(path: str | Path) -> Dataset:
    """Load a claims CSV file into a :class:`Dataset`.

    Raises:
        ValueError: if the header row is missing or malformed.
    """
    builder = DatasetBuilder()
    with open(path, newline="", encoding="utf-8") as f:
        reader = csv.reader(f)
        header = next(reader, None)
        if header is None or [h.strip().lower() for h in header] != _CLAIMS_HEADER:
            raise ValueError(
                f"{path}: expected header {_CLAIMS_HEADER!r}, got {header!r}"
            )
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 3:
                raise ValueError(f"{path}:{lineno}: expected 3 columns, got {len(row)}")
            source, item, value = row
            builder.add(source, item, value)
    return builder.build()


def save_claims(dataset: Dataset, path: str | Path) -> None:
    """Write a dataset to a claims CSV file (inverse of :func:`load_claims`)."""
    with open(path, "w", newline="", encoding="utf-8") as f:
        writer = csv.writer(f)
        writer.writerow(_CLAIMS_HEADER)
        for source_id, item_id, value_id in dataset.iter_claims():
            writer.writerow(
                [
                    dataset.source_names[source_id],
                    dataset.item_names[item_id],
                    dataset.value_label[value_id],
                ]
            )


def load_gold(path: str | Path) -> GoldStandard:
    """Load a gold-standard CSV file.

    Raises:
        ValueError: if the header row is missing or malformed.
    """
    truths: dict[str, str] = {}
    with open(path, newline="", encoding="utf-8") as f:
        reader = csv.reader(f)
        header = next(reader, None)
        if header is None or [h.strip().lower() for h in header] != _GOLD_HEADER:
            raise ValueError(
                f"{path}: expected header {_GOLD_HEADER!r}, got {header!r}"
            )
        for lineno, row in enumerate(reader, start=2):
            if not row:
                continue
            if len(row) != 2:
                raise ValueError(f"{path}:{lineno}: expected 2 columns, got {len(row)}")
            item, value = row
            truths[item] = value
    return GoldStandard(truths=truths)


def save_gold(gold: GoldStandard, path: str | Path) -> None:
    """Write a gold standard to CSV (inverse of :func:`load_gold`)."""
    with open(path, "w", newline="", encoding="utf-8") as f:
        writer = csv.writer(f)
        writer.writerow(_GOLD_HEADER)
        for item, value in gold.truths.items():
            writer.writerow([item, value])
