"""Data model: datasets, claims, gold standards, and CSV persistence."""

from .dataset import Dataset, DatasetBuilder, DatasetStats
from .goldstandard import GoldStandard
from .stream import ClaimDelta, ClaimLedger, LedgerUpdate, coalesce_deltas
from .loader import load_claims, load_gold, save_claims, save_gold
from .examples import (
    MOTIVATING_ACCURACIES,
    MOTIVATING_COPY_PAIRS,
    MOTIVATING_TRUTHS,
    MOTIVATING_VALUE_PROBABILITIES,
    motivating_accuracies,
    motivating_example,
    motivating_gold,
    motivating_value_probabilities,
)

__all__ = [
    "ClaimDelta",
    "ClaimLedger",
    "Dataset",
    "DatasetBuilder",
    "DatasetStats",
    "GoldStandard",
    "LedgerUpdate",
    "coalesce_deltas",
    "load_claims",
    "load_gold",
    "save_claims",
    "save_gold",
    "MOTIVATING_ACCURACIES",
    "MOTIVATING_COPY_PAIRS",
    "MOTIVATING_TRUTHS",
    "MOTIVATING_VALUE_PROBABILITIES",
    "motivating_accuracies",
    "motivating_example",
    "motivating_gold",
    "motivating_value_probabilities",
]
