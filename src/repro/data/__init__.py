"""Data model: datasets, claims, gold standards, and CSV persistence."""

from .dataset import Dataset, DatasetBuilder, DatasetStats
from .goldstandard import GoldStandard
from .loader import load_claims, load_gold, save_claims, save_gold
from .examples import (
    MOTIVATING_ACCURACIES,
    MOTIVATING_COPY_PAIRS,
    MOTIVATING_TRUTHS,
    MOTIVATING_VALUE_PROBABILITIES,
    motivating_accuracies,
    motivating_example,
    motivating_gold,
    motivating_value_probabilities,
)

__all__ = [
    "Dataset",
    "DatasetBuilder",
    "DatasetStats",
    "GoldStandard",
    "load_claims",
    "load_gold",
    "save_claims",
    "save_gold",
    "MOTIVATING_ACCURACIES",
    "MOTIVATING_COPY_PAIRS",
    "MOTIVATING_TRUTHS",
    "MOTIVATING_VALUE_PROBABILITIES",
    "motivating_accuracies",
    "motivating_example",
    "motivating_gold",
    "motivating_value_probabilities",
]
