"""repro — scalable copy detection for structured data.

A production-grade reproduction of *"Scaling up Copy Detection"* (Xian Li,
Xin Luna Dong, Kenneth B. Lyons, Weiyi Meng, Divesh Srivastava — ICDE
2015), including every substrate the paper builds on:

* :mod:`repro.core` — the Bayesian copy-detection algorithms: PAIRWISE,
  INDEX, BOUND, BOUND+, HYBRID, INCREMENTAL.
* :mod:`repro.fusion` — the iterative truth-finding loop (VOTE / ACCU /
  ACCUCOPY, Dong et al. VLDB 2009) the detectors plug into.
* :mod:`repro.data` — datasets, gold standards, the paper's motivating
  example, CSV persistence.
* :mod:`repro.synth` — synthetic worlds shaped like the paper's four
  evaluation datasets, with planted copying.
* :mod:`repro.sampling` — BYITEM / BYCELL / SCALESAMPLE.
* :mod:`repro.nra` — Fagin's NRA and the FAGININPUT baseline.
* :mod:`repro.simjoin` — set-overlap counting (shared items per pair).
* :mod:`repro.fingerprint` — text copy-detection baselines (Q-grams,
  sketches, winnowing) from the related work.
* :mod:`repro.eval` — metrics and the experiment runner behind every
  table and figure reproduction in ``benchmarks/``.

Quickstart::

    from repro import CopyParams, run_fusion, SingleRoundDetector
    from repro.synth import stock_1day

    world = stock_1day(scale=0.05)
    params = CopyParams()
    detector = SingleRoundDetector(params, method="hybrid")
    result = run_fusion(world.dataset, params, detector=detector)
    print(result.final_detection().copying_pairs())
"""

from .core import (
    CopyParams,
    DetectionResult,
    EntryOrdering,
    IncrementalDetector,
    InvertedIndex,
    PairDecision,
    SingleRoundDetector,
    detect,
)
from .data import Dataset, DatasetBuilder, GoldStandard
from .eval import run_method
from .fusion import FusionConfig, FusionResult, run_fusion
from .synth import GeneratorConfig, SyntheticWorld, generate, make_profile

__version__ = "1.0.0"

__all__ = [
    "CopyParams",
    "Dataset",
    "DatasetBuilder",
    "DetectionResult",
    "EntryOrdering",
    "FusionConfig",
    "FusionResult",
    "GeneratorConfig",
    "GoldStandard",
    "IncrementalDetector",
    "InvertedIndex",
    "PairDecision",
    "SingleRoundDetector",
    "SyntheticWorld",
    "__version__",
    "detect",
    "generate",
    "make_profile",
    "run_fusion",
    "run_method",
]
