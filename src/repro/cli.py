"""Command-line interface: ``python -m repro`` / ``repro-copydetect``.

Subcommands:

* ``generate`` — write a synthetic profile to claims/gold CSV files.
* ``detect`` — single-round copy detection on a claims file with any
  algorithm (probabilities/accuracies bootstrapped by voting).
* ``fuse`` — full iterative fusion with a chosen detector; prints the
  fused truths, final accuracies, and detected copying.
* ``stats`` — Table V-style statistics of a claims file.
* ``bench`` — the Table VI/VII method grid on a claims file.
* ``serve-snapshot`` — run fusion and publish versioned verdict
  snapshots into a store directory.
* ``query`` — read a published verdict store (pair verdicts, fused
  truths, top copiers) without any detection run.
* ``serve`` — the streaming service: a long-running HTTP/SSE server
  that ingests claim deltas continuously, re-fuses in micro-batched
  epochs, and publishes every epoch to a verdict store.
* ``cluster-worker`` — run one remote-execution worker: a long-lived
  TCP loop that caches the broadcast world, scans shipped partitions
  and merges partials peer-to-peer for drivers running
  ``detect``/``fuse`` with ``--executor remote``.
* ``conformance`` — the differential grid fuzzer: sweep the
  (method x backend x executor x reduce x partition x fusion) grid
  against the pure-Python reference, persist divergent worlds into the
  regression corpus, and emit a machine-readable report.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .core import (
    BACKENDS,
    EXECUTORS,
    METHODS,
    PAIR_LAYOUTS,
    PARALLEL_METHODS,
    PARTITION_AXES,
    REDUCE_MODES,
    CopyParams,
    IncrementalDetector,
    SingleRoundDetector,
    detect,
)
from .data import load_claims, load_gold, save_claims, save_gold
from .eval import render_table
from .fusion import (
    FUSION_METHOD_VALUES,
    CredibilityModel,
    FusionConfig,
    run_fusion,
    vote_probabilities,
)
from .synth import PROFILES, make_profile


def _add_params(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--alpha", type=float, default=0.1, help="copy prior")
    parser.add_argument("--s", type=float, default=0.8, help="copy selectivity")
    parser.add_argument("--n", type=int, default=50, help="false values per item")
    parser.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default="numpy",
        help="scoring backend: 'numpy' (default — vectorized kernel for "
        "pairwise/index, epoch-batched scan for bound/bound+/hybrid; "
        "identical verdicts, much faster) or 'python' (the paper-literal "
        "reference loops)",
    )
    parser.add_argument(
        "--epoch-size",
        type=int,
        default=None,
        metavar="N",
        help="entries per epoch for the numpy bound scans "
        "(default: the library's tuned value)",
    )
    parser.add_argument(
        "--pair-layout",
        choices=list(PAIR_LAYOUTS),
        default="auto",
        help="pair-state layout for the numpy kernels: 'auto' (default — "
        "dense flat arrays while n_sources^2 stays under the per-kernel "
        "limit, compact observed-pair arrays beyond it), 'dense', or "
        "'sparse' to force a layout",
    )


def _params(args: argparse.Namespace) -> CopyParams:
    return CopyParams(
        alpha=args.alpha,
        s=args.s,
        n=args.n,
        backend=args.backend,
        pair_layout=args.pair_layout,
    )


def _add_fusion_method(parser: argparse.ArgumentParser) -> None:
    """The truth-finding method flags shared by ``fuse`` and ``serve``."""
    parser.add_argument(
        "--fusion",
        choices=list(FUSION_METHOD_VALUES),
        default="accu",
        help="truth-finding update: 'accu' (the paper's softmax, default) "
        "or 'ds' (Dempster-Shafer: credibility-weighted mass functions, "
        "per-item conflict diagnostics, pignistic truths)",
    )
    parser.add_argument(
        "--credibility-file",
        default=None,
        metavar="FILE",
        help="per-source credibility priors for --fusion ds: a JSON "
        "object or 'name,weight' CSV ('*' sets the default weight)",
    )
    parser.add_argument(
        "--ds-uncertainty",
        type=float,
        default=0.0,
        metavar="U",
        help="mass each DS claim reserves for 'I don't know' "
        "(0 <= U < 1, default 0)",
    )


def _fusion_config(args: argparse.Namespace) -> FusionConfig:
    """A :class:`FusionConfig` from the shared CLI flags.

    Rejects credibility/uncertainty flags without ``--fusion ds`` here,
    with a clean ``SystemExit``, rather than letting ``run_fusion``'s
    ValueError surface as a traceback.
    """
    if args.fusion != "ds":
        if args.credibility_file is not None:
            raise SystemExit("--credibility-file requires --fusion ds")
        if args.ds_uncertainty != 0.0:
            raise SystemExit("--ds-uncertainty requires --fusion ds")
    credibility = None
    if args.credibility_file is not None:
        try:
            credibility = CredibilityModel.from_file(args.credibility_file)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"--credibility-file: {exc}")
    return FusionConfig(
        max_rounds=args.max_rounds,
        fusion_method=args.fusion,
        credibility=credibility,
        ds_uncertainty=args.ds_uncertainty,
    )


def _cmd_generate(args: argparse.Namespace) -> int:
    world = make_profile(args.profile, scale=args.scale, seed=args.seed)
    out = Path(args.output)
    out.mkdir(parents=True, exist_ok=True)
    save_claims(world.dataset, out / "claims.csv")
    save_gold(world.gold, out / "gold.csv")
    stats = world.dataset.stats()
    print(
        render_table(
            f"Generated {args.profile} (scale={args.scale})",
            ["sources", "items", "dist-values", "index-entries", "claims"],
            [[
                stats.n_sources,
                stats.n_items,
                stats.n_distinct_values,
                stats.n_index_entries,
                stats.n_claims,
            ]],
        )
    )
    print(f"claims -> {out / 'claims.csv'}")
    print(f"gold   -> {out / 'gold.csv'}")
    print(f"planted copying pairs: {sorted(world.copy_pairs)}")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    dataset = load_claims(args.claims)
    stats = dataset.stats()
    print(
        render_table(
            f"Statistics of {args.claims}",
            ["sources", "items", "dist-values", "index-entries", "claims", "conflicts/item"],
            [[
                stats.n_sources,
                stats.n_items,
                stats.n_distinct_values,
                stats.n_index_entries,
                stats.n_claims,
                stats.avg_conflicts_per_item,
            ]],
        )
    )
    return 0


def _add_parallel(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--n-partitions",
        type=int,
        default=1,
        metavar="P",
        help="split the index scan into P shares and map/reduce them "
        "(index and hybrid only; 1 = sequential)",
    )
    parser.add_argument(
        "--executor",
        choices=list(EXECUTORS),
        default="serial",
        help="how partitions run: in-process ('serial'), a thread pool, "
        "a real process pool (the columnar world is broadcast via shared "
        "memory under --backend numpy), or 'remote' — cluster workers "
        "over TCP (see --workers and the cluster-worker subcommand)",
    )
    parser.add_argument(
        "--workers",
        default=None,
        metavar="HOST:PORT[,HOST:PORT...]",
        help="cluster worker addresses for --executor remote "
        "(default: the REPRO_CLUSTER_WORKERS environment variable)",
    )
    parser.add_argument(
        "--reduce",
        choices=list(REDUCE_MODES),
        default="flat",
        help="merge partial results in one pass ('flat') or pairwise "
        "('tree', O(log P) merge depth at large partition counts)",
    )
    parser.add_argument(
        "--partition-by",
        choices=list(PARTITION_AXES),
        default="entries",
        help="balance partitions by entry count ('entries') or by "
        "estimated incidence work ('work', straggler-resistant)",
    )


def _cluster_from_args(args):
    """Build the CLI-owned cluster executor for ``--executor remote``.

    Returns None for local executors.  The caller closes it (and may
    print its wire/timing stats first).
    """
    if getattr(args, "executor", "serial") != "remote":
        return None
    from .cluster import ClusterError, resolve_cluster

    try:
        executor, _ = resolve_cluster(args.workers)
        return executor
    except ClusterError as exc:
        raise SystemExit(str(exc))


def _detect_parallel(args, dataset, probabilities, accuracies, params, cluster=None):
    """Route ``detect --n-partitions > 1`` through the parallel engine."""
    from .parallel import detect_hybrid_parallel, detect_index_parallel

    if args.method == "index":
        return detect_index_parallel(
            dataset,
            probabilities,
            accuracies,
            params,
            n_partitions=args.n_partitions,
            strategy="work" if args.partition_by == "work" else "stride",
            executor=args.executor,
            reduce=args.reduce,
            cluster=cluster,
        )
    if args.method == "hybrid":
        return detect_hybrid_parallel(
            dataset,
            probabilities,
            accuracies,
            params,
            n_partitions=args.n_partitions,
            executor=args.executor,
            epoch_size=args.epoch_size,
            reduce=args.reduce,
            partition_by=args.partition_by,
            cluster=cluster,
        )
    raise SystemExit(
        f"--n-partitions > 1 supports methods 'index' and 'hybrid', "
        f"not {args.method!r}"
    )


def _cmd_detect(args: argparse.Namespace) -> int:
    dataset = load_claims(args.claims)
    params = _params(args)
    probabilities = vote_probabilities(dataset)
    accuracies = [0.8] * dataset.n_sources
    start = time.perf_counter()
    cluster = _cluster_from_args(args) if args.n_partitions > 1 else None
    if args.n_partitions > 1:
        try:
            result = _detect_parallel(
                args, dataset, probabilities, accuracies, params, cluster=cluster
            )
        except Exception:
            if cluster is not None:
                cluster.close()
            raise
    else:
        result = detect(
            dataset,
            probabilities,
            accuracies,
            params,
            method=args.method,
            epoch_size=args.epoch_size,
        )
    elapsed = time.perf_counter() - start
    copying = sorted(
        (pair for pair, d in result.decisions.items() if d.copying),
        key=lambda pair: result.decisions[pair].posterior.independent,
    )
    rows = []
    for s1, s2 in copying:
        decision = result.decisions[(s1, s2)]
        rows.append(
            [
                dataset.source_names[s1],
                dataset.source_names[s2],
                decision.posterior.independent,
                decision.posterior.forward,
                decision.posterior.backward,
            ]
        )
    print(
        render_table(
            f"Copying detected by {args.method} "
            f"({elapsed:.3f}s, {result.cost.computations:,} computations)",
            ["source 1", "source 2", "Pr(indep)", "Pr(1->2)", "Pr(2->1)"],
            rows,
        )
    )
    if cluster is not None:
        print(cluster.stats.summary())
        cluster.close()
    if args.explain:
        from .core import explain_pair

        print()
        for s1, s2 in copying[: args.explain]:
            explanation = explain_pair(
                dataset, s1, s2, probabilities, accuracies, params
            )
            print(explanation.render())
            print()
    return 0


def _cmd_fuse(args: argparse.Namespace) -> int:
    dataset = load_claims(args.claims)
    params = _params(args)
    if args.method not in PARALLEL_METHODS and (
        args.n_partitions > 1 or args.executor != "serial"
    ):
        # Reject rather than silently run sequentially: a user asking for
        # a partitioned scan or a pool must pick a partitionable method.
        raise SystemExit(
            f"--n-partitions > 1 / --executor supports methods "
            f"{'/'.join(PARALLEL_METHODS)}, not {args.method!r}"
        )
    if args.executor != "serial" and args.n_partitions <= 1:
        raise SystemExit("--executor requires --n-partitions > 1")
    cluster = None
    if args.method == "none":
        detector = None
    elif args.method == "incremental":
        detector = IncrementalDetector(params, epoch_size=args.epoch_size)
    else:
        cluster = _cluster_from_args(args)
        detector = SingleRoundDetector(
            params,
            method=args.method,
            epoch_size=args.epoch_size,
            n_partitions=args.n_partitions,
            executor=args.executor,
            reduce=args.reduce,
            partition_by=args.partition_by,
            cluster=cluster,
        )
    config = _fusion_config(args)
    try:
        result = run_fusion(dataset, params, detector=detector, config=config)
    finally:
        if cluster is not None:
            print(cluster.stats.summary())
            cluster.close()

    print(
        f"converged={result.converged} rounds={result.n_rounds} "
        f"detection={result.detection_seconds:.3f}s "
        f"computations={result.total_computations:,}"
    )
    conflict = result.final_conflict()
    if conflict:
        worst_item, worst_k = max(conflict.items(), key=lambda kv: kv[1])
        mean_k = sum(conflict.values()) / len(conflict)
        print(
            f"DS conflict: mean K = {mean_k:.4f}, max K = {worst_k:.4f} "
            f"on {dataset.item_names[worst_item]!r}"
        )
    if args.gold:
        gold = load_gold(args.gold)
        print(f"fusion accuracy: {gold.accuracy_of(dataset, result.chosen):.3f}")
    detection = result.final_detection()
    if detection is not None:
        pairs = sorted(
            (dataset.source_names[a], dataset.source_names[b])
            for a, b in detection.copying_pairs()
        )
        print(f"copying pairs ({len(pairs)}): {pairs}")
    if args.truths:
        rows = [
            [dataset.item_names[item], dataset.value_label[value]]
            for item, value in sorted(result.chosen.items())
        ]
        print(render_table("Fused truths", ["item", "value"], rows[: args.truths]))
    return 0


def _cmd_serve_snapshot(args: argparse.Namespace) -> int:
    from .serving import VerdictStore

    dataset = load_claims(args.claims)
    params = _params(args)
    if args.method == "none":
        detector = None
    elif args.method == "incremental":
        detector = IncrementalDetector(params, epoch_size=args.epoch_size)
    else:
        detector = SingleRoundDetector(
            params, method=args.method, epoch_size=args.epoch_size
        )
    config = FusionConfig(max_rounds=args.max_rounds)
    result = run_fusion(
        dataset, params, detector=detector, config=config, snapshot_store=args.store
    )
    store = VerdictStore(args.store)
    rows = []
    for snapshot_id in result.snapshot_ids:
        meta, _ = store.load(snapshot_id)
        rows.append(
            [
                snapshot_id,
                meta["kind"],
                meta["round"],
                meta["n_pairs"],
                meta["n_items"],
            ]
        )
    print(
        render_table(
            f"Published {len(result.snapshot_ids)} snapshots -> {args.store} "
            f"(converged={result.converged}, CURRENT={store.current_id()})",
            ["snapshot", "kind", "round", "pair rows", "item rows"],
            rows,
        )
    )
    return 0


def _resolve_source(reader, token: str) -> int:
    """A source id from a CLI token: an integer, or a published label."""
    try:
        return int(token)
    except ValueError:
        pass
    names = reader.labels.get("sources") or []
    try:
        return names.index(token)
    except ValueError:
        raise SystemExit(f"unknown source {token!r} (not an id or a label)")


def _cmd_query(args: argparse.Namespace) -> int:
    from .serving import ServingError, VerdictReader

    try:
        reader = VerdictReader(args.store)
    except ServingError as exc:
        raise SystemExit(str(exc))
    queried = False
    if args.pair:
        queried = True
        s1 = _resolve_source(reader, args.pair[0])
        s2 = _resolve_source(reader, args.pair[1])
        verdict = reader.get_verdict(s1, s2)
        if verdict is None:
            print(
                f"pair ({args.pair[0]}, {args.pair[1]}): never observed — "
                f"independent by construction"
            )
        else:
            names = reader.labels.get("sources")
            label = (
                f"{names[verdict.source_1]} / {names[verdict.source_2]}"
                if names
                else f"{verdict.source_1} / {verdict.source_2}"
            )
            print(
                render_table(
                    f"Verdict for {label} (snapshot {verdict.snapshot_id})",
                    ["copying", "early", "Pr(indep)", "Pr(1->2)", "Pr(2->1)",
                     "C->", "C<-", "decision pos"],
                    [[
                        verdict.copying,
                        verdict.early,
                        verdict.independent,
                        verdict.forward,
                        verdict.backward,
                        verdict.c_fwd,
                        verdict.c_bwd,
                        verdict.decision_pos,
                    ]],
                )
            )
    if args.item is not None:
        queried = True
        try:
            item: int | str = int(args.item)
        except ValueError:
            item = args.item
        try:
            truth = reader.get_truth(item)
        except ServingError as exc:
            raise SystemExit(str(exc))
        if truth is None:
            print(f"item {args.item!r}: not in the store")
        else:
            print(
                render_table(
                    f"Truth for {truth.item_name or truth.item} "
                    f"(snapshot {truth.snapshot_id})",
                    ["value", "probability", "supporters"],
                    [[
                        truth.value_label or truth.value,
                        truth.probability,
                        ",".join(str(s) for s in truth.supporters),
                    ]],
                )
            )
    if args.top:
        queried = True
        rows = [
            [c.source_name or c.source, c.score]
            for c in reader.top_copiers(args.top)
        ]
        print(
            render_table(
                f"Top copiers (snapshot {reader.snapshot_id})",
                ["source", "copy mass"],
                rows,
            )
        )
    if not queried:
        info = reader.cache_info()
        print(
            f"store {args.store}: snapshot {info['snapshot_id']}, "
            f"{info['n_pairs']} pair rows, {info['n_items']} item rows"
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal
    import tempfile

    from .streaming import StreamEngine, StreamingServer, StreamingService

    params = _params(args)
    store = args.store or tempfile.mkdtemp(prefix="repro-verdicts-")

    async def _run() -> None:
        engine = StreamEngine(
            store=store,
            params=params,
            config=_fusion_config(args),
            warm_start=not args.cold_epochs,
        )
        service = StreamingService(
            engine,
            max_batch=args.max_batch,
            max_delay=args.max_delay,
            debounce=args.debounce,
        )
        server = StreamingServer(service, host=args.host, port=args.port)
        shutdown = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, shutdown.set)
            except NotImplementedError:  # pragma: no cover - non-unix
                pass
        await server.start()
        if args.seed_claims:
            dataset = load_claims(args.seed_claims)
            from .data import ClaimDelta

            service.submit(
                ClaimDelta(
                    dataset.source_names[s],
                    dataset.item_names[i],
                    dataset.value_label[v],
                )
                for s, i, v in dataset.iter_claims()
            )
            await service.flush()
            state = service.state
            print(
                f"seeded epoch {state.epoch}: {state.dataset.n_sources} "
                f"sources, {state.dataset.n_items} items "
                f"(snapshot {state.snapshot_id})",
                flush=True,
            )
        print(
            f"streaming service on http://{args.host}:{server.port} "
            f"(verdict store: {store})",
            flush=True,
        )
        print(
            "endpoints: POST /claims · GET /events (SSE) · /verdict "
            "· /truth · /explain · /stats — Ctrl-C drains and exits",
            flush=True,
        )
        try:
            await shutdown.wait()
        finally:
            await server.stop(drain=True)
            state = service.state
            if state is not None:
                print(
                    f"drained: epoch {state.epoch}, snapshot "
                    f"{state.snapshot_id} is CURRENT in {store}",
                    flush=True,
                )

    asyncio.run(_run())
    return 0


def _cmd_cluster_worker(args: argparse.Namespace) -> int:
    """Run one cluster worker loop until interrupted."""
    from .cluster import serve_worker

    server = serve_worker(args.host, args.port)
    host, port = server.server_address[:2]
    # The parent (LocalCluster, or a human wiring --workers) parses
    # this exact line; keep it in sync with repro.cluster.local.
    print(f"cluster worker listening on {host}:{port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        server.server_close()
    return 0


def _cmd_conformance(args: argparse.Namespace) -> int:
    import json

    from .conformance import run_grid

    grid = "smoke" if args.smoke else args.grid
    n_cases = args.cases
    if n_cases is None:
        n_cases = 240 if grid == "smoke" else 2000
    report = run_grid(
        grid=grid,
        n_cases=n_cases,
        seed=args.seed,
        corpus_dir=args.corpus,
        shrink=not args.no_shrink,
        progress=lambda message: print(f"  ! {message}", flush=True),
    )
    rows = [
        [
            config.label,
            config.contract,
            report.cases_per_config.get(config.label, 0),
            sum(
                1
                for d in report.divergences
                if d.config.label == config.label
            ),
        ]
        for config in report.configs
    ]
    print(
        render_table(
            f"Conformance grid '{grid}' — {report.n_cases} cases, "
            f"seed {report.seed}, {report.elapsed_seconds:.1f}s",
            ["configuration", "contract", "cases", "divergences"],
            rows,
        )
    )
    if args.report:
        path = Path(args.report)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report.to_json(), indent=1) + "\n")
        print(f"report -> {path}")
    if report.ok:
        print("OK: zero divergences")
        return 0
    print(f"FAIL: {len(report.divergences)} divergence(s)")
    for divergence in report.divergences:
        print(
            f"  case {divergence.case_index} [{divergence.config.label}] "
            f"{divergence.world.kind} world "
            f"({divergence.world.n_sources} sources, "
            f"{divergence.world.n_claims} claims)"
        )
        for detail in divergence.details[:3]:
            print(f"    {detail}")
        if divergence.corpus_path:
            print(f"    fixture -> {divergence.corpus_path}")
    return 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from .eval import run_suite

    dataset = load_claims(args.claims)
    gold = load_gold(args.gold) if args.gold else None
    params = _params(args)
    methods = tuple(args.methods.split(",")) if args.methods else None
    suite = run_suite(
        dataset,
        params,
        **({"methods": methods} if methods else {}),
        sample_fraction=args.sample_fraction,
    )
    print(suite.render(dataset, gold))
    print(f"\ntotal wall time: {suite.wall_seconds:.2f}s")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-copydetect",
        description="Scalable copy detection for structured data (Li et al., ICDE 2015)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_gen = sub.add_parser("generate", help="generate a synthetic dataset")
    p_gen.add_argument("profile", choices=PROFILES)
    p_gen.add_argument("--scale", type=float, default=0.1)
    p_gen.add_argument("--seed", type=int, default=7)
    p_gen.add_argument("--output", "-o", default="dataset")
    p_gen.set_defaults(func=_cmd_generate)

    p_stats = sub.add_parser("stats", help="dataset statistics (Table V columns)")
    p_stats.add_argument("claims")
    p_stats.set_defaults(func=_cmd_stats)

    p_det = sub.add_parser("detect", help="single-round copy detection")
    p_det.add_argument("claims")
    p_det.add_argument("--method", choices=METHODS, default="hybrid")
    p_det.add_argument(
        "--explain",
        type=int,
        default=0,
        metavar="N",
        help="print the evidence breakdown for the N most-confident pairs",
    )
    _add_params(p_det)
    _add_parallel(p_det)
    p_det.set_defaults(func=_cmd_detect)

    p_fuse = sub.add_parser("fuse", help="iterative fusion with copy detection")
    p_fuse.add_argument("claims")
    p_fuse.add_argument(
        "--method",
        choices=list(METHODS) + ["incremental", "none"],
        default="incremental",
    )
    p_fuse.add_argument("--gold", help="gold CSV for fusion accuracy")
    p_fuse.add_argument(
        "--max-rounds", type=int, default=12,
        help="fusion round cap (default 12)",
    )
    p_fuse.add_argument(
        "--truths", type=int, default=0, metavar="N", help="print first N fused truths"
    )
    _add_params(p_fuse)
    _add_parallel(p_fuse)
    _add_fusion_method(p_fuse)
    p_fuse.set_defaults(func=_cmd_fuse)

    p_bench = sub.add_parser(
        "bench", help="run the method grid (Table VI/VII style) on a claims file"
    )
    p_bench.add_argument("claims")
    p_bench.add_argument("--gold", help="gold CSV for fusion accuracy")
    p_bench.add_argument(
        "--methods",
        help="comma-separated method list (default: the Table VI grid)",
    )
    p_bench.add_argument("--sample-fraction", type=float, default=0.1)
    _add_params(p_bench)
    p_bench.set_defaults(func=_cmd_bench)

    p_srv = sub.add_parser(
        "serve-snapshot",
        help="run fusion and publish versioned verdict snapshots into a store",
    )
    p_srv.add_argument("claims")
    p_srv.add_argument(
        "--store",
        required=True,
        metavar="DIR",
        help="verdict-store directory (created if missing); round 1 "
        "publishes a full snapshot, later rounds publish deltas over it",
    )
    p_srv.add_argument(
        "--method",
        choices=list(METHODS) + ["incremental", "none"],
        default="incremental",
    )
    p_srv.add_argument(
        "--max-rounds", type=int, default=12,
        help="fusion round cap (default 12)",
    )
    _add_params(p_srv)
    p_srv.set_defaults(func=_cmd_serve_snapshot)

    p_query = sub.add_parser(
        "query", help="query a published verdict store (no detection run)"
    )
    p_query.add_argument("store", help="verdict-store directory")
    p_query.add_argument(
        "--pair",
        nargs=2,
        metavar=("S1", "S2"),
        help="verdict for a source pair (ids or published labels)",
    )
    p_query.add_argument(
        "--item",
        metavar="ITEM",
        help="fused truth + provenance for an item (id or published name)",
    )
    p_query.add_argument(
        "--top",
        type=int,
        default=0,
        metavar="K",
        help="print the K most-copying sources",
    )
    p_query.set_defaults(func=_cmd_query)

    p_serve = sub.add_parser(
        "serve",
        help="long-running streaming service: ingest claim deltas over "
        "HTTP, re-fuse in micro-batched epochs, publish every epoch to "
        "a verdict store, stream updates over SSE",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback)"
    )
    p_serve.add_argument(
        "--port",
        type=int,
        default=8731,
        help="bind port (0 picks a free one and prints it)",
    )
    p_serve.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="verdict-store directory every epoch publishes into "
        "(default: a fresh temporary directory, printed at startup)",
    )
    p_serve.add_argument(
        "--seed-claims",
        default=None,
        metavar="CSV",
        help="claims file to ingest as epoch 1 before accepting traffic",
    )
    p_serve.add_argument(
        "--max-batch",
        type=int,
        default=512,
        metavar="N",
        help="pending deltas that trigger an immediate epoch (default 512)",
    )
    p_serve.add_argument(
        "--max-delay",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="hard staleness bound: an epoch flushes at most this long "
        "after its first pending delta (default 0.5)",
    )
    p_serve.add_argument(
        "--debounce",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="quiet period a bursty source must hold before an early "
        "flush (default 0.05; capped at --max-delay)",
    )
    p_serve.add_argument(
        "--max-rounds", type=int, default=12,
        help="fusion round cap per epoch (default 12)",
    )
    p_serve.add_argument(
        "--cold-epochs",
        action="store_true",
        help="re-fuse every epoch from uniform accuracies instead of "
        "warm-starting from the previous epoch (slower, but each epoch "
        "is bit-identical to a batch run over the accumulated claims)",
    )
    _add_params(p_serve)
    _add_fusion_method(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_worker = sub.add_parser(
        "cluster-worker",
        help="run a cluster worker: scans partitions and merges partials "
        "shipped by a driver running detect/fuse --executor remote",
    )
    p_worker.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback)"
    )
    p_worker.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port (default 0: the kernel picks a free one, printed "
        "on startup)",
    )
    p_worker.set_defaults(func=_cmd_cluster_worker)

    p_conf = sub.add_parser(
        "conformance",
        help="differential grid fuzzing of every backend/executor "
        "configuration against the pure-Python reference",
    )
    p_conf.add_argument(
        "--grid",
        # Keep in sync with repro.conformance.engine.GRIDS — hardcoded
        # so building the parser never imports the conformance engine
        # (every other subcommand would pay that startup cost).
        choices=["full", "smoke"],
        default="full",
        help="configuration grid: 'smoke' (PR-time) or 'full' (nightly)",
    )
    p_conf.add_argument(
        "--smoke",
        action="store_true",
        help="shorthand for --grid smoke (with the smoke default of "
        "240 cases)",
    )
    p_conf.add_argument(
        "--cases",
        type=int,
        default=None,
        metavar="N",
        help="total (world, configuration) cases to run "
        "(default: 240 smoke / 2000 full)",
    )
    p_conf.add_argument(
        "--seed", type=int, default=7, help="world-stream seed (replayable)"
    )
    p_conf.add_argument(
        "--corpus",
        default=None,
        metavar="DIR",
        help="directory to write shrunk divergence fixtures into "
        "(e.g. tests/data/corpus; omitted = don't persist)",
    )
    p_conf.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="write the machine-readable JSON report here",
    )
    p_conf.add_argument(
        "--no-shrink",
        action="store_true",
        help="skip world minimisation on divergence (faster triage)",
    )
    p_conf.set_defaults(func=_cmd_conformance)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
