"""Driver-side cluster executor: broadcast, schedule, tree-reduce.

:class:`ClusterExecutor` is the remote sibling of the in-process
thread/process pools behind ``executor="threads"/"processes"``: the
parallel engine hands it the same position partitions and gets back
one merged :class:`~repro.core.kernel.PairTable`, so results are
bit-identical to the local executors by construction —

* the map step runs the identical :func:`scan_columnar` over identical
  bytes (arrays travel as raw buffers, never re-encoded floats);
* the reduce step replays the engine's exact associativity: ``"flat"``
  merges all non-empty partials in partition order in one
  :meth:`PairTable.merge`, ``"tree"`` pairs them ``(0,1), (2,3), ...``
  level by level exactly like ``_tree_reduce`` — but each pair merges
  **on a worker**, pulling the right-hand partial peer-to-peer, so the
  driver only receives the root.

Scheduling is LPT over the engine's per-partition work estimates
(:func:`~repro.parallel.partition.assign_buckets_lpt`): partitions are
independent of the worker count, so 7 work-balanced partitions run on
1, 2 or 4 workers with identical results and balanced busy time.

The world (columnar entries + accuracies) is broadcast to each worker
**once per executor session** and thereafter rewritten in place via
``world-update`` frames carrying only the fields whose bytes changed —
the TCP mirror of :meth:`SharedWorld.write
<repro.parallel.shm.SharedWorld.write>` — so multi-round fusion never
re-ships an unchanged provider structure.

Fault handling: a worker dying mid-round (killed process, dropped
socket, hung past the timeout) marks its connection dead and the whole
round — scans are pure and partials on the dead worker are gone —
is retried once on the surviving workers.  A second failure, or a
round with no workers left, raises one clear
:class:`~repro.cluster.wire.ClusterError`; callers never see a raw
``ConnectionResetError``.
"""

from __future__ import annotations

import os
import socket
import threading
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..core.kernel import PairTable
from ..parallel.partition import assign_buckets_lpt
from .wire import ClusterError, recv_message, send_message
from .worker import WORLD_FIELDS, table_from_arrays


@dataclass
class WorkerStats:
    """Per-worker wire and timing accounting (one per connection).

    Attributes:
        tasks: scan tasks executed.
        merges: tree-reduce merges executed.
        worlds: full world broadcasts received (the broadcast-once
            proof: stays at 1 across a multi-round fusion session).
        updates: in-place ``world-update`` frames received.
        world_bytes: bytes of full world broadcasts.
        update_bytes: bytes of world-update frames.
        task_bytes: bytes of task frames (positions + params).
        result_bytes: bytes of partial tables received back.
        busy_seconds: worker-reported scan + merge time.
        failures: rounds this worker died in.
    """

    tasks: int = 0
    merges: int = 0
    worlds: int = 0
    updates: int = 0
    world_bytes: int = 0
    update_bytes: int = 0
    task_bytes: int = 0
    result_bytes: int = 0
    busy_seconds: float = 0.0
    failures: int = 0

    def as_dict(self) -> dict:
        """Plain-dict view (for JSON artifacts and tests)."""
        return dict(self.__dict__)


@dataclass
class ClusterStats:
    """Aggregated executor statistics across all workers.

    Attributes:
        workers: per-address :class:`WorkerStats`.
        rounds: map/reduce rounds executed.
        retries: rounds that were re-run after a worker death.
    """

    workers: dict[str, WorkerStats] = field(default_factory=dict)
    rounds: int = 0
    retries: int = 0

    def _total(self, name: str):
        return sum(getattr(w, name) for w in self.workers.values())

    @property
    def broadcast_bytes(self) -> int:
        """Bytes shipped as full world broadcasts, all workers."""
        return self._total("world_bytes")

    @property
    def update_bytes(self) -> int:
        """Bytes shipped as in-place world updates, all workers."""
        return self._total("update_bytes")

    @property
    def task_bytes(self) -> int:
        """Bytes shipped as task frames, all workers."""
        return self._total("task_bytes")

    @property
    def result_bytes(self) -> int:
        """Bytes received back as partial tables, all workers."""
        return self._total("result_bytes")

    def as_dict(self) -> dict:
        """Plain-dict view (for JSON artifacts and tests)."""
        return {
            "rounds": self.rounds,
            "retries": self.retries,
            "broadcast_bytes": self.broadcast_bytes,
            "update_bytes": self.update_bytes,
            "task_bytes": self.task_bytes,
            "result_bytes": self.result_bytes,
            "workers": {
                label: stats.as_dict() for label, stats in self.workers.items()
            },
        }

    def summary(self) -> str:
        """Multi-line human summary (the CLI's ``--executor remote`` report)."""
        lines = [
            f"cluster: {len(self.workers)} worker(s), {self.rounds} round(s)"
            + (f", {self.retries} retried" if self.retries else "")
            + f" | world {self.broadcast_bytes:,} B broadcast"
            + f" + {self.update_bytes:,} B updates"
            + f" | tasks {self.task_bytes:,} B out, {self.result_bytes:,} B back"
        ]
        for label, w in self.workers.items():
            state = " [dead]" if w.failures else ""
            lines.append(
                f"  {label}{state}: {w.tasks} task(s), {w.merges} merge(s), "
                f"world x{w.worlds} + {w.updates} update(s), "
                f"busy {w.busy_seconds:.3f}s"
            )
        return "\n".join(lines)


class _Connection:
    """One persistent driver->worker socket with byte accounting."""

    def __init__(self, host: str, port: int, timeout: float):
        self.host = host
        self.port = port
        self.label = f"{host}:{port}"
        self.timeout = timeout
        self.alive = True
        self.world_sent = False
        self.stats = WorkerStats()
        try:
            self.sock = socket.create_connection((host, port), timeout=timeout)
            self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError as exc:
            raise ClusterError(
                f"cannot connect to cluster worker {self.label} ({exc})"
            ) from exc

    def request(self, kind, meta=None, arrays=None, bucket: str | None = None):
        """One round-trip; marks the connection dead on any failure.

        Returns ``(reply_kind, reply_meta, reply_arrays)``.  An
        ``error`` reply (the worker rejected the message) raises
        without killing the connection; a transport failure (reset,
        hangup, timeout) marks the worker dead first.
        """
        try:
            sent = send_message(self.sock, kind, meta, arrays)
            reply = recv_message(self.sock)
        except ClusterError as exc:
            self.alive = False
            raise ClusterError(f"worker {self.label} died: {exc}") from exc
        if bucket is not None:
            setattr(self.stats, bucket, getattr(self.stats, bucket) + sent)
        rkind, rmeta, rarrays = reply
        if rkind == "error":
            raise ClusterError(f"worker {self.label}: {rmeta.get('error')}")
        return rkind, rmeta, rarrays

    def close(self):
        """Close the socket (idempotent, best-effort)."""
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - close never matters
            pass


def parse_worker_spec(spec) -> list[tuple[str, int]]:
    """Parse a worker list: ``"host:port,host:port"`` or a sequence.

    Sequence elements may be ``"host:port"`` strings or ``(host, port)``
    pairs.  Raises :class:`ClusterError` on anything malformed.
    """
    if isinstance(spec, str):
        spec = [part for part in spec.split(",") if part.strip()]
    addresses = []
    for entry in spec:
        if isinstance(entry, str):
            host, sep, port = entry.strip().rpartition(":")
            if not sep or not host:
                raise ClusterError(
                    f"bad worker address {entry!r}; expected host:port"
                )
        else:
            host, port = entry
        try:
            addresses.append((host, int(port)))
        except (TypeError, ValueError) as exc:
            raise ClusterError(f"bad worker address {entry!r} ({exc})") from exc
    if not addresses:
        raise ClusterError("empty cluster worker list")
    return addresses


class ClusterExecutor:
    """Remote executor over a fixed set of cluster workers.

    Args:
        workers: worker addresses (see :func:`parse_worker_spec`).
        timeout: per-request socket timeout in seconds (covers the
            longest single partition scan).
        retries: how many times a failed round is re-run on the
            surviving workers before giving up (default 1).

    Usage mirrors the in-process pools: the parallel engine calls
    :meth:`broadcast` once per round and :meth:`map_reduce` per scan;
    :meth:`close` tears the session down.  Also a context manager.
    """

    def __init__(self, workers, timeout: float = 120.0, retries: int = 1):
        addresses = parse_worker_spec(workers)
        self.session = f"sess-{os.urandom(6).hex()}"
        self.timeout = timeout
        self.retries = retries
        self.stats = ClusterStats()
        self._round = 0
        self._world_cache: dict[str, np.ndarray] | None = None
        self._n_sources: int | None = None
        self._lock = threading.Lock()
        self._closed = False
        self._connections: list[_Connection] = []
        for host, port in addresses:
            conn = _Connection(host, port, timeout)
            self._connections.append(conn)
            self.stats.workers[conn.label] = conn.stats
        # Fail fast on a protocol mismatch before any world is packed.
        for conn in self._connections:
            conn.request("ping")

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (connections are gone)."""
        return self._closed

    @property
    def n_workers(self) -> int:
        """Workers still alive."""
        return len(self._alive())

    @property
    def addresses(self) -> list[str]:
        """All configured worker addresses (dead ones included)."""
        return [conn.label for conn in self._connections]

    def _alive(self) -> list[_Connection]:
        alive = [conn for conn in self._connections if conn.alive]
        if not alive:
            raise ClusterError(
                "no cluster workers left alive "
                f"(all {len(self._connections)} died this session)"
            )
        return alive

    # -- world broadcast ------------------------------------------------
    @staticmethod
    def _pack_world(cols, accuracies) -> dict[str, np.ndarray]:
        """The five broadcast arrays (mirrors ``SharedWorld._pack``)."""
        return {
            "probs": np.ascontiguousarray(cols.probs, dtype=np.float64),
            "main": np.ascontiguousarray(cols.main, dtype=np.uint8),
            "offsets": np.ascontiguousarray(cols.offsets, dtype=np.int64),
            "providers": np.ascontiguousarray(cols.providers, dtype=np.int64),
            "accuracies": np.ascontiguousarray(accuracies, dtype=np.float64),
        }

    def broadcast(self, cols, accuracies, n_sources: int) -> None:
        """Ship the columnar world to every live worker.

        First call per session sends the full ``world`` frame; later
        calls send ``world-update`` frames carrying only the fields
        whose bytes actually changed (none at all when the world is
        unchanged), falling back to a full broadcast when a worker
        answers ``stale`` or any array's length/dtype changed.
        """
        arrays = self._pack_world(cols, accuracies)
        cache = self._world_cache
        same_layout = cache is not None and all(
            cache[k].dtype == arrays[k].dtype and len(cache[k]) == len(arrays[k])
            for k in WORLD_FIELDS
        )
        changed = (
            {
                k: arrays[k]
                for k in WORLD_FIELDS
                if not np.array_equal(cache[k], arrays[k])
            }
            if same_layout
            else None
        )
        for conn in self._alive():
            try:
                self._broadcast_one(conn, arrays, changed, n_sources)
            except ClusterError:
                if conn.alive:
                    raise  # protocol rejection, not a death: a real bug
                conn.stats.failures += 1
        self._alive()  # every worker died mid-broadcast: give up clearly
        self._world_cache = arrays
        self._n_sources = n_sources

    def _broadcast_one(self, conn, arrays, changed, n_sources) -> None:
        if conn.world_sent and changed is not None:
            if not changed:
                return  # bit-identical world: nothing to ship
            kind, _, _ = conn.request(
                "world-update",
                {"session": self.session},
                changed,
                bucket="update_bytes",
            )
            if kind == "ok":
                conn.stats.updates += 1
                return
            # "stale": the worker lost the session; fall through to a
            # full broadcast.
        conn.request(
            "world",
            {"session": self.session, "n_sources": n_sources},
            arrays,
            bucket="world_bytes",
        )
        conn.stats.worlds += 1
        conn.world_sent = True

    # -- map + reduce ---------------------------------------------------
    def map_reduce(
        self,
        position_arrays: Sequence[np.ndarray],
        weights: Sequence[int],
        params,
        reduce_mode: str = "flat",
    ) -> PairTable | None:
        """Scan every partition remotely and reduce to one table.

        Args:
            position_arrays: one int64 entry-position array per
                partition (already filtered of empties by the engine).
            weights: per-partition work estimates for LPT scheduling.
            params: the round's :class:`~repro.core.params.CopyParams`.
            reduce_mode: ``"flat"`` or ``"tree"`` — same associativity
                as the engine's in-process ``_merge_tables``.

        Returns:
            The merged table, or None when every partition scanned
            empty.

        Raises:
            ClusterError: after a failed retry or with no live workers.
        """
        if not position_arrays:
            return None
        last_error: ClusterError | None = None
        for attempt in range(self.retries + 1):
            alive = self._alive()  # raises when none remain
            try:
                with self._lock:
                    self._round += 1
                    round_id = self._round
                self.stats.rounds += 1
                if attempt:
                    self.stats.retries += 1
                return self._run_round(
                    alive, round_id, position_arrays, weights, params, reduce_mode
                )
            except ClusterError as exc:
                for conn in alive:
                    if not conn.alive:
                        conn.stats.failures += 1
                last_error = exc
        raise ClusterError(
            f"cluster round failed and its retry failed too: {last_error}"
        ) from last_error

    def _run_round(
        self, alive, round_id, position_arrays, weights, params, reduce_mode
    ) -> PairTable | None:
        from dataclasses import asdict

        tasks = [f"r{round_id}.t{i}" for i in range(len(position_arrays))]
        params_meta = asdict(params)
        buckets = assign_buckets_lpt(weights, len(alive))
        owner: dict[int, _Connection] = {}
        for conn, bucket in zip(alive, buckets):
            for ti in bucket:
                owner[ti] = conn

        n_pairs: dict[int, int] = {}

        def run_tasks(conn, task_indices):
            for ti in task_indices:
                _, meta, _ = conn.request(
                    "task",
                    {
                        "session": self.session,
                        "task": tasks[ti],
                        "params": params_meta,
                    },
                    {"positions": position_arrays[ti]},
                    bucket="task_bytes",
                )
                n_pairs[ti] = int(meta["n_pairs"])
                conn.stats.tasks += 1
                conn.stats.busy_seconds += float(meta["busy_seconds"])

        self._per_worker(zip(alive, buckets), run_tasks)

        # Reduce over non-empty partials in partition order — the same
        # filter-then-merge the in-process _merge_tables applies.
        live_tasks = [ti for ti in range(len(tasks)) if n_pairs.get(ti)]
        if not live_tasks:
            return None
        if reduce_mode == "tree":
            root = self._tree_reduce_remote(live_tasks, tasks, owner, params)
            return self._fetch(owner[root], tasks[root])
        tables = self._fetch_all(live_tasks, tasks, owner)
        return PairTable.merge(tables, layout=params.pair_layout)

    def _tree_reduce_remote(self, items, tasks, owner, params) -> int:
        """Run pairwise merge levels on the workers; returns the root.

        Pairing is ``(0,1), (2,3), ...`` per level over the surviving
        items — exactly ``_tree_reduce``'s topology — and each pair's
        merge runs on the left item's owner, which pulls the right
        partial peer-to-peer when it lives on another worker.
        """
        while len(items) > 1:
            ops = []  # (dest_conn, dest_task, src_task, src_conn)
            next_items = []
            for i in range(0, len(items), 2):
                if i + 1 >= len(items):
                    next_items.append(items[i])
                    continue
                dest, src = items[i], items[i + 1]
                ops.append((owner[dest], tasks[dest], tasks[src], owner[src]))
                next_items.append(dest)
            by_conn: dict[str, tuple[_Connection, list]] = {}
            for dest_conn, dest_task, src_task, src_conn in ops:
                by_conn.setdefault(dest_conn.label, (dest_conn, []))[1].append(
                    (dest_task, src_task, src_conn)
                )

            def run_merges(conn, merge_ops):
                for dest_task, src_task, src_conn in merge_ops:
                    peer = (
                        None
                        if src_conn is conn
                        else [src_conn.host, src_conn.port]
                    )
                    _, meta, _ = conn.request(
                        "merge",
                        {
                            "session": self.session,
                            "task": dest_task,
                            "peer": peer,
                            "peer_task": src_task,
                            "layout": params.pair_layout,
                        },
                        bucket="task_bytes",
                    )
                    conn.stats.merges += 1
                    conn.stats.busy_seconds += float(meta["busy_seconds"])

            self._per_worker(by_conn.values(), run_merges)
            items = next_items
        return items[0]

    def _fetch(self, conn: _Connection, task: str) -> PairTable:
        _, meta, arrays = conn.request(
            "fetch", {"session": self.session, "task": task}
        )
        # Payload bytes of the partial (frame headers not counted).
        conn.stats.result_bytes += sum(arr.nbytes for arr in arrays.values())
        return table_from_arrays(meta, arrays)

    def _fetch_all(self, live_tasks, tasks, owner) -> list[PairTable]:
        results: dict[int, PairTable] = {}
        by_conn: dict[str, tuple[_Connection, list[int]]] = {}
        for ti in live_tasks:
            by_conn.setdefault(owner[ti].label, (owner[ti], []))[1].append(ti)

        def run_fetches(conn, task_indices):
            for ti in task_indices:
                results[ti] = self._fetch(conn, tasks[ti])

        self._per_worker(by_conn.values(), run_fetches)
        return [results[ti] for ti in live_tasks]

    def _per_worker(self, conn_ops, fn) -> None:
        """Run ``fn(conn, ops)`` concurrently, one thread per worker.

        Each worker's ops run sequentially on its single socket; the
        first worker failure is re-raised after all threads finish (so
        every death is recorded before the retry decision).
        """
        pairs = [(conn, ops) for conn, ops in conn_ops if ops]
        errors: list[ClusterError] = []

        def run(conn, ops):
            try:
                fn(conn, ops)
            except ClusterError as exc:
                errors.append(exc)

        if len(pairs) == 1:
            conn, ops = pairs[0]
            run(conn, ops)
        else:
            threads = [
                threading.Thread(target=run, args=pair, daemon=True)
                for pair in pairs
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        if errors:
            raise errors[0]

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """End the session on every worker and drop all connections."""
        if self._closed:
            return
        self._closed = True
        for conn in self._connections:
            if conn.alive:
                try:
                    conn.request("end-session", {"session": self.session})
                except ClusterError:
                    pass
            conn.close()

    def __enter__(self) -> "ClusterExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def resolve_cluster(spec, workspace=None) -> tuple[ClusterExecutor, bool]:
    """Resolve a ``cluster=`` argument into ``(executor, owned)``.

    ``spec`` may be a live :class:`ClusterExecutor` (returned as-is,
    never closed by the engine), a worker list (string or sequence,
    see :func:`parse_worker_spec`), or None — in which case the
    ``REPRO_CLUSTER_WORKERS`` environment variable supplies the list.
    With a workspace, address-list specs resolve to the workspace's
    persistent executor (``owned`` False — the workspace closes it);
    otherwise a transient executor is created (``owned`` True — the
    caller closes it after the call).

    Raises:
        ClusterError: when no worker list can be found anywhere.
    """
    if isinstance(spec, ClusterExecutor):
        return spec, False
    if spec is None:
        spec = os.environ.get("REPRO_CLUSTER_WORKERS", "").strip()
        if not spec:
            raise ClusterError(
                "executor='remote' needs workers: pass cluster=/--workers "
                "host:port[,host:port...] or set REPRO_CLUSTER_WORKERS"
            )
    addresses = parse_worker_spec(spec)
    if workspace is not None:
        return workspace.cluster(addresses), False
    return ClusterExecutor(addresses), True
