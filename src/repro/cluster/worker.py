"""The cluster worker: a threaded TCP server that scans and merges.

One worker is one long-lived process (``repro-copydetect
cluster-worker``) holding cached worlds and partial results in memory:

* ``world`` — the driver broadcasts the full columnar world (the same
  five arrays :class:`~repro.parallel.shm.SharedWorld` packs: probs,
  main flags, CSR offsets, providers, accuracies) **once per session**.
  The worker copies them into writable buffers and keeps them for the
  session's lifetime.
* ``world-update`` — between fusion rounds the driver ships only the
  fields whose bytes changed; the worker rewrites its cached buffers
  *in place* — the TCP mirror of :meth:`SharedWorld.write
  <repro.parallel.shm.SharedWorld.write>` — so multi-round fusion never
  re-establishes (or re-allocates) the world.  A missing session or a
  length mismatch answers ``stale`` and the driver falls back to a
  full broadcast.
* ``task`` — a partition's entry positions plus ``CopyParams`` (as
  JSON; float repr round-trips exactly).  The worker gathers its share
  with :meth:`ColumnarEntries.take` and runs the same
  :func:`~repro.core.kernel.scan_columnar` the in-process executors
  run, storing the resulting :class:`~repro.core.kernel.PairTable`
  under the task id.
* ``merge`` — one edge of the driver's tree reduce: the worker merges
  a peer's partial into its own, fetching it **peer-to-peer** over a
  direct worker-to-worker connection when the peer partial lives on
  another host, so the driver only ever receives the root table.
* ``fetch`` — return a stored partial's arrays (the driver's root
  collection, and the peer side of ``merge``).

Every reply reports ``busy_seconds`` so the driver can account
per-worker busy time.  Anything a handler rejects — an unknown
session, a corrupt frame, a scan that raises — answers an ``error``
frame instead of killing the connection, and the driver surfaces it as
:class:`~repro.cluster.wire.ClusterError`.
"""

from __future__ import annotations

import socket
import socketserver
import threading
import time

import numpy as np

from ..core.kernel import ColumnarEntries, PairTable, scan_columnar
from ..core.params import CopyParams
from .wire import ClusterError, recv_message, send_message

#: World-broadcast fields in pack order (mirrors ``SharedWorld._pack``).
WORLD_FIELDS = ("probs", "main", "offsets", "providers", "accuracies")


class _Session:
    """One driver session's cached world and partial tables."""

    def __init__(self, n_sources: int, arrays: dict[str, np.ndarray]):
        self.n_sources = n_sources
        # Writable copies: world-update rewrites these buffers in place
        # and the ColumnarEntries views below see the new values.
        self.arrays = {name: np.array(arrays[name]) for name in WORLD_FIELDS}
        self.cols = ColumnarEntries(
            probs=self.arrays["probs"],
            main=self.arrays["main"].view(bool),
            offsets=self.arrays["offsets"],
            providers=self.arrays["providers"],
        )
        self.accuracies = self.arrays["accuracies"]
        self.partials: dict[str, PairTable] = {}
        self.lock = threading.Lock()


class WorkerServer(socketserver.ThreadingTCPServer):
    """Threaded TCP server holding the worker's session state."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address):
        super().__init__(address, _Handler)
        self.sessions: dict[str, _Session] = {}
        self.sessions_lock = threading.Lock()

    def session(self, meta: dict) -> _Session:
        """Look up the session a message names, or raise."""
        sid = meta.get("session")
        with self.sessions_lock:
            sess = self.sessions.get(sid)
        if sess is None:
            raise ClusterError(f"unknown session {sid!r} (world never broadcast?)")
        return sess


class _Handler(socketserver.BaseRequestHandler):
    """One connection's frame loop: dispatch messages until hangup."""

    def handle(self):
        sock = self.request
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        while True:
            try:
                msg = recv_message(sock, eof_ok=True)
            except ClusterError:
                return  # corrupt frame / peer reset: drop the connection
            if msg is None:
                return  # clean hangup
            kind, meta, arrays = msg
            try:
                handler = _DISPATCH.get(kind)
                if handler is None:
                    raise ClusterError(f"unknown message kind {kind!r}")
                if handler(self.server, sock, meta, arrays):
                    return  # shutdown requested
            except ClusterError as exc:
                try:
                    send_message(sock, "error", {"error": str(exc)})
                except ClusterError:
                    return
            except Exception as exc:  # scan/merge raised: report, don't die
                try:
                    send_message(
                        sock, "error", {"error": f"{type(exc).__name__}: {exc}"}
                    )
                except ClusterError:
                    return


def _handle_ping(server: WorkerServer, sock, meta, arrays):
    import os

    send_message(
        sock, "pong", {"pid": os.getpid(), "sessions": len(server.sessions)}
    )


def _handle_world(server: WorkerServer, sock, meta, arrays):
    missing = [name for name in WORLD_FIELDS if name not in arrays]
    if missing:
        raise ClusterError(f"world broadcast missing arrays {missing}")
    sess = _Session(int(meta["n_sources"]), arrays)
    with server.sessions_lock:
        server.sessions[meta["session"]] = sess
    send_message(sock, "ok", {"cached": True})


def _handle_world_update(server: WorkerServer, sock, meta, arrays):
    sid = meta.get("session")
    with server.sessions_lock:
        sess = server.sessions.get(sid)
    if sess is None:
        # The driver falls back to a full broadcast on "stale".
        send_message(sock, "stale", {"reason": f"unknown session {sid!r}"})
        return
    with sess.lock:
        for name, arr in arrays.items():
            cached = sess.arrays.get(name)
            if cached is None or cached.dtype != arr.dtype or len(cached) != len(arr):
                send_message(sock, "stale", {"reason": f"layout changed for {name!r}"})
                return
        for name, arr in arrays.items():
            sess.arrays[name][:] = arr  # in place: SharedWorld.write's mirror
        sess.partials.clear()  # a new round invalidates old partials
    send_message(sock, "ok", {"updated": sorted(arrays)})


def _handle_task(server: WorkerServer, sock, meta, arrays):
    sess = server.session(meta)
    positions = np.ascontiguousarray(arrays["positions"], dtype=np.int64)
    params = CopyParams(**meta["params"])
    started = time.perf_counter()
    table = scan_columnar(
        sess.cols.take(positions), sess.accuracies, params, sess.n_sources
    )
    busy = time.perf_counter() - started
    with sess.lock:
        sess.partials[meta["task"]] = table
    send_message(
        sock,
        "done",
        {"task": meta["task"], "n_pairs": len(table), "busy_seconds": busy},
    )


def _get_partial(sess: _Session, task: str) -> PairTable:
    with sess.lock:
        table = sess.partials.get(task)
    if table is None:
        raise ClusterError(f"no partial stored for task {task!r}")
    return table


def _handle_fetch(server: WorkerServer, sock, meta, arrays):
    sess = server.session(meta)
    table = _get_partial(sess, meta["task"])
    send_message(
        sock,
        "partial",
        {"task": meta["task"], "n_sources": table.n_sources},
        {
            "keys": table.keys,
            "c_fwd": table.c_fwd,
            "c_bwd": table.c_bwd,
            "n_shared": table.n_shared,
            "saw_main": np.ascontiguousarray(table.saw_main, dtype=np.uint8),
        },
    )


def table_from_arrays(meta: dict, arrays: dict) -> PairTable:
    """Rebuild a :class:`PairTable` from a ``partial`` frame."""
    return PairTable(
        n_sources=int(meta["n_sources"]),
        keys=arrays["keys"],
        c_fwd=arrays["c_fwd"],
        c_bwd=arrays["c_bwd"],
        n_shared=arrays["n_shared"],
        saw_main=arrays["saw_main"].view(bool),
    )


def _fetch_peer(session: str, peer: list, task: str) -> PairTable:
    """Peer-to-peer fetch: pull a partial from another worker."""
    host, port = peer[0], int(peer[1])
    try:
        with socket.create_connection((host, port), timeout=30.0) as peer_sock:
            peer_sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            send_message(peer_sock, "fetch", {"session": session, "task": task})
            reply = recv_message(peer_sock)
    except OSError as exc:
        raise ClusterError(f"peer {host}:{port} unreachable ({exc})") from exc
    kind, meta, arrays = reply
    if kind != "partial":
        raise ClusterError(
            f"peer {host}:{port} answered {kind!r}: {meta.get('error', '')}"
        )
    return table_from_arrays(meta, arrays)


def _handle_merge(server: WorkerServer, sock, meta, arrays):
    sess = server.session(meta)
    dest = _get_partial(sess, meta["task"])
    started = time.perf_counter()
    if meta.get("peer") is None:
        other = _get_partial(sess, meta["peer_task"])
    else:
        other = _fetch_peer(meta["session"], meta["peer"], meta["peer_task"])
    live = [t for t in (dest, other) if len(t)]
    if not live:
        merged = PairTable.empty(sess.n_sources)
    else:
        merged = PairTable.merge(live, layout=meta.get("layout", "auto"))
    busy = time.perf_counter() - started
    with sess.lock:
        sess.partials[meta["task"]] = merged
    send_message(
        sock,
        "done",
        {"task": meta["task"], "n_pairs": len(merged), "busy_seconds": busy},
    )


def _handle_end_session(server: WorkerServer, sock, meta, arrays):
    with server.sessions_lock:
        server.sessions.pop(meta.get("session"), None)
    send_message(sock, "ok", {})


def _handle_shutdown(server: WorkerServer, sock, meta, arrays):
    send_message(sock, "ok", {})
    # shutdown() must run off the serve_forever thread; a helper thread
    # lets this handler's reply flush first.
    threading.Thread(target=server.shutdown, daemon=True).start()
    return True


_DISPATCH = {
    "ping": _handle_ping,
    "world": _handle_world,
    "world-update": _handle_world_update,
    "task": _handle_task,
    "fetch": _handle_fetch,
    "merge": _handle_merge,
    "end-session": _handle_end_session,
    "shutdown": _handle_shutdown,
}


def serve_worker(host: str = "127.0.0.1", port: int = 0) -> WorkerServer:
    """Bind a worker server (``port=0`` picks a free port; see
    ``server.server_address`` for the bound one).  The caller runs
    ``server.serve_forever()``."""
    return WorkerServer((host, port))
