"""A simulated cluster: workers as separately spawned interpreters.

:class:`LocalCluster` spawns N ``repro-copydetect cluster-worker``
processes on localhost — genuinely separate Python interpreters with
**no shared memory** and real sockets, so everything the remote
executor does (world broadcast, task shipping, peer-to-peer tree
merges) pays true wire costs.  This is the harness behind the
conformance grid's ``remote`` axis, the fault-injection tests (kill a
worker mid-round) and ``benchmarks/bench_cluster.py``.

Workers bind ``port=0`` (the kernel picks a free port — the same
collision-free pattern the streaming tests use) and print their bound
address on stdout, which the parent parses.  ``close()`` terminates
every worker; an ``atexit`` hook is registered as a safety net so a
crashed test session never leaks worker processes.
"""

from __future__ import annotations

import atexit
import os
import subprocess
import sys
from pathlib import Path

from .executor import ClusterExecutor
from .wire import ClusterError

#: The stdout line a worker prints once bound (parsed by the parent).
READY_PREFIX = "cluster worker listening on "


def _worker_env() -> dict:
    """Child environment: make ``repro`` importable however we were."""
    import repro

    env = dict(os.environ)
    src_root = str(Path(repro.__file__).resolve().parent.parent)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root if not existing else src_root + os.pathsep + existing
    )
    return env


class LocalCluster:
    """N localhost worker subprocesses (context manager).

    Args:
        n_workers: how many worker interpreters to spawn.
        host: interface the workers bind (localhost by default).

    Attributes:
        addresses: ``"host:port"`` per worker, spawn order.
        processes: the underlying :class:`subprocess.Popen` handles
            (the fault tests ``kill()`` these directly).
    """

    def __init__(self, n_workers: int, host: str = "127.0.0.1"):
        if n_workers < 1:
            raise ClusterError(f"n_workers must be >= 1, got {n_workers}")
        self.processes: list[subprocess.Popen] = []
        self.addresses: list[str] = []
        self._owned_executors: list[ClusterExecutor] = []
        env = _worker_env()
        try:
            for _ in range(n_workers):
                proc = subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro",
                        "cluster-worker",
                        "--host",
                        host,
                        "--port",
                        "0",
                    ],
                    stdout=subprocess.PIPE,
                    env=env,
                    text=True,
                )
                self.processes.append(proc)
                line = proc.stdout.readline()
                if not line.startswith(READY_PREFIX):
                    proc.kill()
                    raise ClusterError(
                        f"cluster worker failed to start (said {line!r}); "
                        f"exit code {proc.wait()}"
                    )
                self.addresses.append(line[len(READY_PREFIX) :].strip())
        except Exception:
            self.close()
            raise
        atexit.register(self.close)

    def executor(self, **kwargs) -> ClusterExecutor:
        """A fresh :class:`ClusterExecutor` over all workers.

        The cluster owns it: it is closed automatically with the
        cluster (closing earlier is fine — ``close`` is idempotent).
        """
        executor = ClusterExecutor(self.addresses, **kwargs)
        self._owned_executors.append(executor)
        return executor

    def kill_worker(self, index: int) -> None:
        """SIGKILL one worker (fault-injection hook for tests)."""
        self.processes[index].kill()
        self.processes[index].wait()

    def close(self) -> None:
        """Close owned executors and terminate every worker (idempotent)."""
        for executor in self._owned_executors:
            try:
                executor.close()
            except ClusterError:  # pragma: no cover - best-effort teardown
                pass
        self._owned_executors.clear()
        for proc in self.processes:
            if proc.poll() is None:
                proc.terminate()
        for proc in self.processes:
            if proc.poll() is None:
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:  # pragma: no cover
                    proc.kill()
                    proc.wait()
            if proc.stdout is not None:
                proc.stdout.close()
        atexit.unregister(self.close)

    def __enter__(self) -> "LocalCluster":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
