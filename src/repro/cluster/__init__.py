"""Multi-host execution: the remote-worker cluster layer.

Generalizes the parallel engine's executor abstraction (PR 3's
threads/processes pools) to remote hosts over a stdlib-only TCP
protocol — selected end to end as ``executor="remote"``:

* :mod:`repro.cluster.wire` — the length-prefixed binary frame format
  (magic, version, CRC; arrays as raw typed buffers, never pickle) and
  :class:`ClusterError`, the layer's single error type.
* :mod:`repro.cluster.worker` — the worker process: caches the
  broadcast world per session, scans partitions with the same
  ``scan_columnar`` the in-process executors run, and merges partials
  peer-to-peer for the distributed tree reduce.
* :mod:`repro.cluster.executor` — :class:`ClusterExecutor`, the
  driver: LPT task scheduling over the engine's work estimates,
  broadcast-once world shipping with in-place per-round updates,
  flat/tree reduction bit-identical to the in-process merge, one-retry
  fault handling, and per-worker wire/timing stats.
* :mod:`repro.cluster.local` — :class:`LocalCluster`, the simulated
  cluster (separate spawned interpreters, no shared memory, real
  sockets) used by tests, the conformance grid and the bench.
"""

from .executor import (
    ClusterExecutor,
    ClusterStats,
    WorkerStats,
    parse_worker_spec,
    resolve_cluster,
)
from .local import LocalCluster
from .wire import WIRE_VERSION, ClusterError
from .worker import WorkerServer, serve_worker

__all__ = [
    "WIRE_VERSION",
    "ClusterError",
    "ClusterExecutor",
    "ClusterStats",
    "LocalCluster",
    "WorkerServer",
    "WorkerStats",
    "parse_worker_spec",
    "resolve_cluster",
    "serve_worker",
]
