"""Length-prefixed binary wire format for the cluster worker protocol.

One message is one frame, mirroring the ``serving/codec.py`` snapshot
discipline on a socket instead of a file::

    magic "RCLW" | u32 wire version | u32 header length
    | header JSON (utf-8) | zero padding to 8-byte alignment
    | raw little-endian array payload

The header carries the message ``kind`` (``"world"``, ``"task"``,
``"partial"``, ...), a JSON ``meta`` dict, one descriptor per payload
array — ``(name, dtype, offset, count)`` with offsets relative to the
payload start — and a CRC-32 of the whole payload.  Arrays travel as
raw typed buffers (never pickle), so a worker written against wire
version N can refuse frames from version N+1 with a clear error
instead of misreading them, and a corrupted or truncated frame
surfaces as :class:`ClusterError` naming the peer — callers never see
a raw ``struct``/``json``/``socket`` traceback.

``CopyParams`` ships inside ``meta`` as plain JSON: Python's float
repr round-trips exactly (shortest-repr), so the worker reconstructs
bit-identical parameters without pickling.
"""

from __future__ import annotations

import json
import socket
import struct
import zlib
from typing import Mapping

import numpy as np

#: Frame magic: Repro CLuster Wire.
MAGIC = b"RCLW"

#: Highest wire format this build speaks and the one it writes.  Bump
#: on any incompatible protocol change; older peers refuse newer
#: frames with a clear :class:`ClusterError` instead of misreading.
WIRE_VERSION = 1

_PREAMBLE = struct.Struct("<4sII")

#: Upper bound on a sane header, to reject garbage length prefixes
#: before allocating (a corrupt u32 can claim gigabytes).
_MAX_HEADER = 1 << 24


class ClusterError(Exception):
    """A cluster operation failed (dead worker, corrupt frame, ...).

    The single error type of :mod:`repro.cluster`: everything the wire
    codec, a worker, or the executor can reject — truncated or
    corrupted frames, frames from a newer wire version, a worker that
    died mid-task, a connection refused — raises this, so callers
    catch one exception instead of raw ``socket``/``struct`` errors.
    """


def _align8(n: int) -> int:
    return (n + 7) & ~7


def encode_message(
    kind: str,
    meta: Mapping | None = None,
    arrays: Mapping[str, np.ndarray] | None = None,
) -> bytes:
    """Serialize one protocol message into a single frame buffer.

    Args:
        kind: message discriminator (``"world"``, ``"task"``, ...).
        meta: JSON-serializable metadata, stored verbatim under the
            header's ``"meta"`` key.
        arrays: named 1-D arrays; each is stored contiguously in its
            own dtype at an 8-byte-aligned payload offset.
    """
    descriptors = []
    chunks = []
    offset = 0
    for name, arr in (arrays or {}).items():
        arr = np.ascontiguousarray(arr)
        offset = _align8(offset)
        descriptors.append((name, arr.dtype.str, offset, int(arr.size)))
        chunks.append((offset, arr.tobytes()))
        offset += arr.nbytes
    payload = bytearray(_align8(offset))
    for start, data in chunks:
        payload[start : start + len(data)] = data
    header = json.dumps(
        {
            "kind": kind,
            "meta": dict(meta or {}),
            "arrays": descriptors,
            "payload_crc32": zlib.crc32(bytes(payload)) & 0xFFFFFFFF,
            "payload_length": len(payload),
        },
        separators=(",", ":"),
    ).encode("utf-8")
    preamble = _PREAMBLE.pack(MAGIC, WIRE_VERSION, len(header))
    pad = b"\0" * (_align8(_PREAMBLE.size + len(header)) - _PREAMBLE.size - len(header))
    return preamble + header + pad + bytes(payload)


def _recv_exact(sock: socket.socket, n: int, source: str) -> bytes | None:
    """Read exactly ``n`` bytes, or ``None`` on EOF at offset zero.

    EOF anywhere past the first byte is a truncated frame and raises;
    EOF before any byte arrived is a clean close, which the caller
    decides how to treat.
    """
    if n == 0:
        return b""
    buf = bytearray(n)
    view = memoryview(buf)
    got = 0
    while got < n:
        try:
            chunk = sock.recv_into(view[got:], n - got)
        except OSError as exc:
            raise ClusterError(f"{source}: connection lost mid-frame ({exc})") from exc
        if chunk == 0:
            if got == 0:
                return None
            raise ClusterError(
                f"{source}: connection closed mid-frame ({got} of {n} bytes)"
            )
        got += chunk
    return bytes(buf)


def send_message(
    sock: socket.socket,
    kind: str,
    meta: Mapping | None = None,
    arrays: Mapping[str, np.ndarray] | None = None,
) -> int:
    """Encode and send one frame; returns the number of bytes written.

    Raises:
        ClusterError: when the peer is gone (reset, broken pipe).
    """
    frame = encode_message(kind, meta, arrays)
    try:
        sock.sendall(frame)
    except OSError as exc:
        peer = _peer_label(sock)
        raise ClusterError(f"{peer}: connection lost sending {kind!r} ({exc})") from exc
    return len(frame)


def recv_message(
    sock: socket.socket, eof_ok: bool = False
) -> tuple[str, dict, dict] | None:
    """Receive one frame and decode it into ``(kind, meta, arrays)``.

    Args:
        sock: connected stream socket.
        eof_ok: when true, a clean close at a frame boundary returns
            ``None`` instead of raising (a worker's serve loop uses
            this to notice the driver hanging up).

    Raises:
        ClusterError: for anything short of a well-formed frame this
            build can read — truncation, corruption, wrong magic, a
            failed checksum, or a newer wire version.
    """
    source = _peer_label(sock)
    preamble = _recv_exact(sock, _PREAMBLE.size, source)
    if preamble is None:
        if eof_ok:
            return None
        raise ClusterError(f"{source}: connection closed before a reply arrived")
    magic, version, header_len = _PREAMBLE.unpack(preamble)
    if magic != MAGIC:
        raise ClusterError(f"{source}: not a cluster frame (bad magic {magic!r})")
    if version > WIRE_VERSION:
        raise ClusterError(
            f"{source}: wire format version {version} is newer than this "
            f"build speaks (max {WIRE_VERSION}); upgrade the library"
        )
    if header_len > _MAX_HEADER:
        raise ClusterError(
            f"{source}: corrupted frame (header claims {header_len} bytes)"
        )
    padded_len = _align8(_PREAMBLE.size + header_len) - _PREAMBLE.size
    header_bytes = _recv_exact(sock, padded_len, source)
    if header_bytes is None:
        raise ClusterError(f"{source}: connection closed mid-frame (no header)")
    try:
        header = json.loads(header_bytes[:header_len].decode("utf-8"))
        kind = header["kind"]
        meta = header["meta"]
        descriptors = header["arrays"]
        crc_expected = header["payload_crc32"]
        payload_length = header["payload_length"]
    except (UnicodeDecodeError, json.JSONDecodeError, KeyError, TypeError) as exc:
        raise ClusterError(f"{source}: corrupted frame header ({exc})") from exc
    payload = _recv_exact(sock, payload_length, source)
    if payload is None and payload_length:
        raise ClusterError(f"{source}: connection closed mid-frame (no payload)")
    payload = payload or b""
    if (zlib.crc32(payload) & 0xFFFFFFFF) != crc_expected:
        raise ClusterError(f"{source}: frame payload fails its checksum")
    arrays: dict[str, np.ndarray] = {}
    try:
        for name, dtype, offset, count in descriptors:
            arr = np.frombuffer(payload, dtype=np.dtype(dtype), count=count, offset=offset)
            arr.flags.writeable = False
            arrays[name] = arr
    except (ValueError, TypeError) as exc:
        raise ClusterError(f"{source}: corrupted frame array table ({exc})") from exc
    return kind, meta, arrays


def _peer_label(sock: socket.socket) -> str:
    """Best-effort ``host:port`` of the peer, for error messages."""
    try:
        # AF_UNIX peers (socketpair in tests) have a bare-string name.
        host, port = sock.getpeername()[:2]
        return f"{host}:{port}"
    except (OSError, ValueError):
        return "<disconnected>"
