"""One-call experiment suite: every paper table from a single entry point.

``pytest benchmarks/`` is the canonical harness (it times, asserts the
paper's shape claims, and archives outputs), but a library user who just
wants "run the evaluation on *my* dataset" shouldn't need pytest.
:func:`run_suite` executes the method grid on one dataset and returns the
Table VI/VII-style rows; the CLI exposes it as ``python -m repro bench``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..core import CopyParams
from ..data import Dataset, GoldStandard
from .report import render_table
from .runner import MethodRun, quality_vs_reference, run_method

#: The default method grid (Table VI/VII rows).
DEFAULT_METHODS = (
    "pairwise",
    "sample1",
    "index",
    "hybrid",
    "incremental",
    "scalesample",
)


@dataclass
class SuiteResult:
    """Everything :func:`run_suite` measured on one dataset."""

    runs: dict[str, MethodRun] = field(default_factory=dict)
    wall_seconds: float = 0.0

    def quality_rows(
        self, dataset: Dataset, gold: GoldStandard | None
    ) -> list[list[object]]:
        """Table VI-style rows, referenced to the suite's PAIRWISE run."""
        reference = self.runs.get("pairwise")
        if reference is None:
            raise ValueError("the suite must include 'pairwise' to score quality")
        rows = []
        for name, run in self.runs.items():
            q = quality_vs_reference(run, reference, dataset, gold)
            rows.append(
                [
                    name,
                    q.copy_quality.precision,
                    q.copy_quality.recall,
                    q.copy_quality.f_measure,
                    q.fusion_accuracy,
                    q.fusion_diff,
                ]
            )
        return rows

    def time_rows(self) -> list[list[object]]:
        """Table VII-style rows."""
        return [
            [
                name,
                run.detection_seconds,
                run.computations,
                run.rounds,
                len(run.copying_pairs()),
            ]
            for name, run in self.runs.items()
        ]

    def render(self, dataset: Dataset, gold: GoldStandard | None = None) -> str:
        """Both tables as one printable report."""
        parts = [
            render_table(
                "Copy-detection quality (vs PAIRWISE)",
                ["method", "prec", "rec", "F", "fusion acc", "fusion diff"],
                self.quality_rows(dataset, gold),
            ),
            "",
            render_table(
                "Detection cost",
                ["method", "detect s", "computations", "rounds", "copying"],
                self.time_rows(),
            ),
        ]
        return "\n".join(parts)


def run_suite(
    dataset: Dataset,
    params: CopyParams | None = None,
    methods: tuple[str, ...] = DEFAULT_METHODS,
    sample_fraction: float = 0.1,
    seed: int = 0,
) -> SuiteResult:
    """Run the method grid on one dataset.

    Args:
        dataset: the claims.
        params: model parameters (paper defaults if omitted).
        methods: which of :data:`repro.eval.RUNNER_METHODS` to run;
            include ``"pairwise"`` if quality scoring is wanted.
        sample_fraction: nominal rate for the sampled methods.
        seed: sampling seed.

    Returns:
        A :class:`SuiteResult` keyed by method name.
    """
    params = params or CopyParams()
    result = SuiteResult()
    start = time.perf_counter()
    for method in methods:
        result.runs[method] = run_method(
            method,
            dataset,
            params,
            sample_fraction=sample_fraction,
            seed=seed,
        )
    result.wall_seconds = time.perf_counter() - start
    return result
