"""Quality metrics of Section VI-A.

Copy-detection correctness is measured *against PAIRWISE* (the exhaustive
reference), not against planted truth — the scalable methods are
approximations of PAIRWISE and the paper quantifies exactly that gap:

* precision — of the method's copying pairs, the fraction PAIRWISE also
  outputs;
* recall — of PAIRWISE's copying pairs, the fraction the method outputs;
* F-measure — their harmonic mean.

Truth-finding correctness:

* fusion accuracy — fraction of gold-standard items fused correctly;
* fusion difference — fraction of items where the method's fused value
  differs from PAIRWISE's;
* accuracy variance — mean absolute difference between the source
  accuracies computed with the method vs with PAIRWISE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence


@dataclass(frozen=True)
class PrecisionRecall:
    """Precision / recall / F-measure triple."""

    precision: float
    recall: float

    @property
    def f_measure(self) -> float:
        p, r = self.precision, self.recall
        if p + r == 0.0:
            return 0.0
        return 2.0 * p * r / (p + r)


def pair_quality(
    reference: Iterable[tuple[int, int]],
    candidate: Iterable[tuple[int, int]],
) -> PrecisionRecall:
    """Compare two sets of copying pairs (sorted source-id tuples).

    Conventions for empty sets follow the usual information-retrieval
    definitions: empty candidate means precision 1 (nothing wrong was
    claimed); empty reference means recall 1.
    """
    ref = set(reference)
    cand = set(candidate)
    hit = len(ref & cand)
    precision = hit / len(cand) if cand else 1.0
    recall = hit / len(ref) if ref else 1.0
    return PrecisionRecall(precision=precision, recall=recall)


def fusion_difference(
    reference: Mapping[int, int],
    candidate: Mapping[int, int],
) -> float:
    """Fraction of items fused differently from the reference.

    Items present in only one mapping count as differences.
    """
    items = set(reference) | set(candidate)
    if not items:
        return 0.0
    differing = sum(
        1 for item in items if reference.get(item) != candidate.get(item)
    )
    return differing / len(items)


def accuracy_variance(
    reference: Sequence[float],
    candidate: Sequence[float],
) -> float:
    """Mean absolute difference between two source-accuracy vectors.

    Raises:
        ValueError: if the vectors have different lengths.
    """
    if len(reference) != len(candidate):
        raise ValueError(
            f"accuracy vectors differ in length ({len(reference)} != {len(candidate)})"
        )
    if not reference:
        return 0.0
    return sum(abs(a - b) for a, b in zip(reference, candidate)) / len(reference)
