"""Experiment runner: the per-method protocols behind Tables VI-X.

Each named method bundles a sampling step (or none), a per-round detector,
and the iterative fusion loop, exactly as Section VI-A's implementation
list describes:

=============  =====================================================
name           protocol
=============  =====================================================
pairwise       PAIRWISE every round on the full data
sample1        BYITEM sample, then PAIRWISE on the sample
sample2        BYCELL sample, then PAIRWISE on the sample
index          INDEX every round
bound          BOUND every round
bound+         BOUND+ every round
hybrid         HYBRID every round
incremental    HYBRID rounds 1-2, INCREMENTAL after
scalesample    SCALESAMPLE (floor N=4), then the incremental stack
fagininput     build the NRA input lists every round
=============  =====================================================

For sampled methods, copy detection runs on the sampled dataset and the
resulting (final-round) copy decisions are then *fixed* while the fusion
loop re-runs on the full dataset to produce truth-finding outputs — the
paper evaluates sampled methods' fusion quality on the full item set.

Timing convention (Table VII): ``detection_seconds`` is the copy-detection
time summed over rounds, *including* sampling time for sampled methods
(the paper calls out sampling overhead explicitly); fusion bookkeeping is
not included.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Sequence

from ..core import (
    CopyParams,
    DetectionResult,
    IncrementalDetector,
    SingleRoundDetector,
)
from ..data import Dataset, GoldStandard
from ..fusion import FusionConfig, FusionResult, run_fusion
from ..nra import build_fagin_input
from ..sampling import sample_by_cell, sample_by_item, scale_sample
from .metrics import (
    PrecisionRecall,
    accuracy_variance,
    fusion_difference,
    pair_quality,
)

#: Method names accepted by :func:`run_method`.
RUNNER_METHODS = (
    "pairwise",
    "sample1",
    "sample2",
    "index",
    "bound",
    "bound+",
    "hybrid",
    "incremental",
    "scalesample",
    "fagininput",
)

_SAMPLED = {"sample1", "sample2", "scalesample"}


@dataclass
class MethodRun:
    """Everything measured for one (method, dataset) cell.

    Attributes:
        method: the method name.
        fusion: the fusion result on the *full* dataset.
        detection: the final copy-detection verdicts (on the sample, for
            sampled methods — pair ids align with the full dataset).
        detection_seconds: copy-detection time summed over rounds, plus
            sampling time where applicable.
        sampling_seconds: time spent drawing the sample (0 if unsampled).
        computations: detection computations summed over rounds.
        rounds: fusion rounds executed.
        sampled_items: items in the sample (None if unsampled).
    """

    method: str
    fusion: FusionResult
    detection: DetectionResult
    detection_seconds: float
    sampling_seconds: float
    computations: int
    rounds: int
    sampled_items: int | None = None

    def copying_pairs(self) -> set[tuple[int, int]]:
        return self.detection.copying_pairs()


class _FixedDetector:
    """A detector that replays precomputed verdicts every round."""

    def __init__(self, result: DetectionResult):
        self._result = result

    def run_round(
        self,
        round_no: int,
        dataset: Dataset,
        probabilities: Sequence[float],
        accuracies: Sequence[float],
    ) -> DetectionResult:
        return self._result


class _FaginInputDetector:
    """Builds the NRA input lists each round (the FAGININPUT baseline).

    The verdicts it returns are exact (they fall out of the construction),
    so it can drive a full fusion run while its cost reflects list
    building.
    """

    def __init__(self, params: CopyParams):
        self.params = params

    def run_round(
        self,
        round_no: int,
        dataset: Dataset,
        probabilities: Sequence[float],
        accuracies: Sequence[float],
    ) -> DetectionResult:
        start = time.perf_counter()
        fagin = build_fagin_input(dataset, probabilities, accuracies, self.params)
        fagin.result.elapsed_seconds = time.perf_counter() - start
        return fagin.result


def _make_detector(method: str, params: CopyParams):
    if method in ("pairwise", "sample1", "sample2"):
        return SingleRoundDetector(params, method="pairwise")
    if method in ("index", "bound", "bound+", "hybrid"):
        return SingleRoundDetector(params, method=method)
    if method in ("incremental", "scalesample"):
        return IncrementalDetector(params)
    if method == "fagininput":
        return _FaginInputDetector(params)
    raise ValueError(
        f"unknown method {method!r}; expected one of {RUNNER_METHODS}"
    )


def run_method(
    method: str,
    dataset: Dataset,
    params: CopyParams,
    fusion_config: FusionConfig | None = None,
    sample_fraction: float = 0.1,
    min_items_per_source: int = 4,
    seed: int = 0,
) -> MethodRun:
    """Run one method's full iterative protocol on a dataset.

    Args:
        method: one of :data:`RUNNER_METHODS`.
        dataset: the full dataset.
        params: model parameters.
        fusion_config: fusion loop configuration.
        sample_fraction: item fraction for the sampled methods (the
            paper: 10%, or 1% on Stock-2wk).
        min_items_per_source: SCALESAMPLE's per-source floor (paper: 4).
        seed: RNG seed for sampling.

    Returns:
        A :class:`MethodRun` with quality inputs and cost measures.
    """
    if method not in RUNNER_METHODS:
        raise ValueError(
            f"unknown method {method!r}; expected one of {RUNNER_METHODS}"
        )
    cfg = fusion_config or FusionConfig()
    rng = random.Random(seed)

    sampling_seconds = 0.0
    sampled_items = None
    detect_dataset = dataset
    if method in _SAMPLED:
        start = time.perf_counter()
        if method == "sample1":
            items = sample_by_item(dataset, sample_fraction, rng)
        elif method == "sample2":
            items = sample_by_cell(dataset, sample_fraction, rng)
        else:
            items = scale_sample(
                dataset,
                sample_fraction,
                rng,
                min_items_per_source=min_items_per_source,
            )
        detect_dataset = dataset.project_items(items)
        sampling_seconds = time.perf_counter() - start
        sampled_items = len(items)

    detector = _make_detector(method, params)
    detect_fusion = run_fusion(detect_dataset, params, detector=detector, config=cfg)
    detection = detect_fusion.final_detection()
    assert detection is not None

    if method in _SAMPLED:
        # Fuse the full dataset under the sampled copy decisions.
        fusion = run_fusion(
            dataset, params, detector=_FixedDetector(detection), config=cfg
        )
    else:
        fusion = detect_fusion

    return MethodRun(
        method=method,
        fusion=fusion,
        detection=detection,
        detection_seconds=detect_fusion.detection_seconds + sampling_seconds,
        sampling_seconds=sampling_seconds,
        computations=detect_fusion.total_computations,
        rounds=detect_fusion.n_rounds,
        sampled_items=sampled_items,
    )


@dataclass
class QualityReport:
    """The Table VI row for one method vs the PAIRWISE reference."""

    method: str
    copy_quality: PrecisionRecall
    fusion_accuracy: float
    fusion_diff: float
    accuracy_var: float


def quality_vs_reference(
    run: MethodRun,
    reference: MethodRun,
    dataset: Dataset,
    gold: GoldStandard | None = None,
) -> QualityReport:
    """Score a run against the PAIRWISE reference (and a gold standard)."""
    quality = pair_quality(reference.copying_pairs(), run.copying_pairs())
    accuracy = (
        gold.accuracy_of(dataset, run.fusion.chosen) if gold is not None else 0.0
    )
    return QualityReport(
        method=run.method,
        copy_quality=quality,
        fusion_accuracy=accuracy,
        fusion_diff=fusion_difference(reference.fusion.chosen, run.fusion.chosen),
        accuracy_var=accuracy_variance(
            reference.fusion.accuracies, run.fusion.accuracies
        ),
    )
