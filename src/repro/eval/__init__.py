"""Evaluation harness: metrics, per-method runners, table rendering."""

from .metrics import (
    PrecisionRecall,
    accuracy_variance,
    fusion_difference,
    pair_quality,
)
from .report import improvement, render_table
from .runner import (
    RUNNER_METHODS,
    MethodRun,
    QualityReport,
    quality_vs_reference,
    run_method,
)
from .suite import DEFAULT_METHODS, SuiteResult, run_suite

__all__ = [
    "DEFAULT_METHODS",
    "MethodRun",
    "PrecisionRecall",
    "QualityReport",
    "RUNNER_METHODS",
    "accuracy_variance",
    "fusion_difference",
    "improvement",
    "pair_quality",
    "quality_vs_reference",
    "SuiteResult",
    "render_table",
    "run_method",
    "run_suite",
]
