"""Plain-text table rendering for the benchmark harness.

Every bench prints its table in the same layout the paper uses, so a run
of ``pytest benchmarks/`` produces output directly comparable with
Tables V-X and Figures 2-3.
"""

from __future__ import annotations

from typing import Sequence


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """Render an ASCII table with a title line.

    Floats are shown with 3 significant decimals; everything else via
    ``str``.
    """
    formatted = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in formatted:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    rule = "-+-".join("-" * w for w in widths)
    lines = [title, "=" * len(title)]
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(rule)
    for row in formatted:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        if cell != cell:  # NaN
            return "-"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        return f"{cell:.3f}"
    if isinstance(cell, int):
        return f"{cell:,}"
    return str(cell)


def improvement(baseline: float, value: float) -> float:
    """Relative time improvement, the paper's Table VII convention.

    ``1 - value/baseline``: 0.99 means 99% faster than the baseline.
    Returns NaN when the baseline is zero.
    """
    if baseline == 0.0:
        return float("nan")
    return 1.0 - value / baseline
