"""NumPy-vectorized ACCU / ACCUCOPY truth finding.

The iterative fusion loop (:mod:`repro.fusion.pipeline`) runs the
Dong-Berti-Equille-Srivastava truth-finding update once per round:
compute vote counts, soften them into value probabilities, re-estimate
source accuracies.  The pure-Python implementation in
:mod:`repro.fusion.accu` walks the claims with nested loops — for
ACCUCOPY, its :func:`~repro.fusion.accu.independence_weights` alone runs
a Python inner loop per (provider, higher-ranked provider) incidence and
a dict lookup into the detection result for each — which made the fusion
layer the dominant un-vectorized cost once the detection scans were
vectorized (PRs 1-3).  This module performs the same computation
columnarly:

1. **Columnar claims** (:class:`FusionColumns`): the static claim
   structure in struct-of-arrays layout — a provider CSR per value, a
   claim CSR per source, and an item-sorted value permutation with
   segment offsets.  The claims never change across fusion rounds, so
   the workspace builds this once and every round reuses it.
2. **Vote counts**: accuracy log-odds ``A'(S) = ln(n A / (1-A))`` come
   out of one vectorized expression over the source axis; the per-value
   sums are one ``np.bincount`` scatter-add over the flat provider
   stream (which accumulates in stream order, i.e. in the reference's
   per-value provider order — structural vote-count ties are therefore
   preserved exactly, so tie-broken truth choices match the reference).
3. **ACCUCOPY discounts** (:func:`independence_weight_stream`): values
   are grouped by provider count ``k``, each group's providers are
   rank-sorted by accuracy with one stable ``argsort``, and every
   provider's independence weight
   ``I(S) = prod_{S' above S} (1 - s Pr(S -> S'))`` is a masked
   row-product over a ``k x k`` copy-probability gather.  The gather's
   backing store is picked by ``CopyParams.pair_layout``: dense worlds
   densify the detection result into an ``n_sources x n_sources``
   matrix, while worlds whose ``n_sources ** 2`` exceeds
   :data:`DENSE_MATRIX_LIMIT` (where the dense matrix would cost
   gigabytes) keep only the *decided* pairs in a sorted-key
   :class:`~repro.core.pairspace.PairValueMap` and gather with
   ``np.searchsorted`` — identical floats, memory bounded by the
   decision count.  (The former behaviour — silently falling back to
   the reference per-value weight loop — is retired; the switch is
   logged.)
4. **Per-item softmax**: vote counts are permuted into the item-sorted
   layout and the max-shift, exponential sums and normalisation run as
   segment reductions (``np.maximum.reduceat`` / ``np.add.reduceat``)
   over the per-item segments.
5. **Accuracy update**: the mean claimed-value probability per source is
   one gather plus one ``np.bincount`` over the claim CSR.

The Python implementation remains the reference (and the default,
``CopyParams(backend="python")``); the vectorized path reorders
floating-point reductions, so the property tests assert agreement to
1e-9 rather than bit identity — exactly the contract of the detection
kernels of PRs 1-2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..core.pairspace import PairValueMap, resolve_pair_layout
from ..core.params import CopyParams
from ..core.result import DetectionResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..data import Dataset

#: Largest dense copy-probability matrix (``n_sources ** 2`` floats) the
#: ``"auto"`` layout will allocate for the ACCUCOPY discount gather;
#: beyond it (> ~2k sources) the sparse sorted-key lookup
#: (:func:`sparse_copy_probabilities`) serves the same gather — with a
#: logged warning — keeping memory bounded by the number of *decided*
#: pairs.
DENSE_MATRIX_LIMIT = 1 << 22


@dataclass
class FusionColumns:
    """The static claim structure of a dataset, in columnar layout.

    Everything here depends only on the claims — never on probabilities,
    accuracies or detection results — so one instance serves every round
    of a fusion run (and is what :class:`~repro.fusion.FusionWorkspace`
    caches).

    Attributes:
        n_sources: number of sources.
        n_values: number of distinct ``(item, value)`` pairs.
        prov_offsets: CSR offsets into the provider stream, per value id,
            shape ``(n_values + 1,)``.
        prov_sources: concatenated provider source ids (sorted within
            each value, matching ``Dataset.providers``).
        prov_value: value id per provider slot (``np.repeat`` of the
            value axis — the scatter key for vote counting).
        claim_offsets: CSR offsets into the claim stream, per source id,
            shape ``(n_sources + 1,)``.
        claim_values: concatenated claimed value ids per source, in
            claim insertion order (matching ``dict.values()`` iteration
            in the reference).
        claim_sources: source id per claim slot (the scatter key for the
            accuracy update).
        item_order: permutation of value ids sorted by item id (stable,
            so values stay ascending within an item — the reference's
            ``item_value_table`` order).
        seg_starts: offsets of each represented item's segment inside
            ``item_order``, shape ``(n_segments + 1,)``.
        seg_sizes: values per segment (``np.diff(seg_starts)``).
        seg_items: item id per segment, shape ``(n_segments,)`` — the
            key stream for per-item diagnostics (the DS conflict dict).
    """

    n_sources: int
    n_values: int
    prov_offsets: np.ndarray
    prov_sources: np.ndarray
    prov_value: np.ndarray
    claim_offsets: np.ndarray
    claim_values: np.ndarray
    claim_sources: np.ndarray
    item_order: np.ndarray
    seg_starts: np.ndarray
    seg_sizes: np.ndarray
    seg_items: np.ndarray

    @classmethod
    def from_dataset(cls, dataset: "Dataset") -> "FusionColumns":
        """Columnarize the claims of a dataset (one pass, done once)."""
        n_values = dataset.n_values
        n_sources = dataset.n_sources

        providers = dataset.providers
        prov_counts = np.fromiter(
            (len(p) for p in providers), dtype=np.int64, count=n_values
        )
        prov_offsets = np.zeros(n_values + 1, dtype=np.int64)
        np.cumsum(prov_counts, out=prov_offsets[1:])
        flat_sources: list[int] = []
        for sources in providers:
            flat_sources.extend(sources)
        prov_sources = np.asarray(flat_sources, dtype=np.int64)
        prov_value = np.repeat(np.arange(n_values, dtype=np.int64), prov_counts)

        claim_counts = np.fromiter(
            (len(c) for c in dataset.claims), dtype=np.int64, count=n_sources
        )
        claim_offsets = np.zeros(n_sources + 1, dtype=np.int64)
        np.cumsum(claim_counts, out=claim_offsets[1:])
        flat_values: list[int] = []
        for claim in dataset.claims:
            flat_values.extend(claim.values())
        claim_values = np.asarray(flat_values, dtype=np.int64)
        claim_sources = np.repeat(
            np.arange(n_sources, dtype=np.int64), claim_counts
        )

        value_item = np.asarray(dataset.value_item, dtype=np.int64)
        item_order = np.argsort(value_item, kind="stable")
        sorted_items = value_item[item_order]
        if n_values:
            boundaries = np.nonzero(np.diff(sorted_items))[0] + 1
            seg_starts = np.concatenate(
                ([0], boundaries, [n_values])
            ).astype(np.int64)
        else:
            seg_starts = np.zeros(1, dtype=np.int64)
        return cls(
            n_sources=n_sources,
            n_values=n_values,
            prov_offsets=prov_offsets,
            prov_sources=prov_sources,
            prov_value=prov_value,
            claim_offsets=claim_offsets,
            claim_values=claim_values,
            claim_sources=claim_sources,
            item_order=item_order,
            seg_starts=seg_starts,
            seg_sizes=np.diff(seg_starts),
            seg_items=sorted_items[seg_starts[:-1]],
        )


def accuracy_scores(
    accuracies: Sequence[float] | np.ndarray, params: CopyParams
) -> np.ndarray:
    """Vectorized ``A'(S) = ln(n A / (1 - A))`` with the standard clamp."""
    a = np.clip(
        np.asarray(accuracies, dtype=np.float64),
        params.accuracy_clamp,
        1.0 - params.accuracy_clamp,
    )
    return np.log(params.n * a / (1.0 - a))


def copy_probability_matrix(
    detection: DetectionResult, n_sources: int
) -> np.ndarray:
    """Densify a detection result into directed copy probabilities.

    ``matrix[copier, original] = Pr(copier -> original | Phi)``; pairs
    never opened stay 0 (independent), matching
    :meth:`~repro.core.result.DetectionResult.copy_probability`.
    """
    matrix = np.zeros((n_sources, n_sources))
    for (s1, s2), decision in detection.decisions.items():
        matrix[s1, s2] = decision.posterior.forward
        matrix[s2, s1] = decision.posterior.backward
    return matrix


def sparse_copy_probabilities(
    detection: DetectionResult, n_sources: int
) -> PairValueMap:
    """The sparse counterpart of :func:`copy_probability_matrix`.

    Stores only the decided pairs (two directed entries each); lookups
    of never-opened pairs — and the diagonal — read 0, exactly like the
    dense matrix's untouched zeros.
    """
    items: list[tuple[tuple[int, int], float]] = []
    for (s1, s2), decision in detection.decisions.items():
        items.append(((s1, s2), decision.posterior.forward))
        items.append(((s2, s1), decision.posterior.backward))
    return PairValueMap.from_items(n_sources, items)


def independence_weight_stream(
    cols: FusionColumns,
    accuracies: np.ndarray,
    detection: DetectionResult,
    params: CopyParams,
) -> np.ndarray:
    """ACCUCOPY's per-provider discount, over the whole provider stream.

    Returns weights aligned with ``cols.prov_sources``: single-provider
    values keep weight 1 (the reference never discounts them), and each
    provider of a multi-provider value keeps
    ``prod_{S' ranked above} (1 - s * Pr(S -> S' | Phi))`` with ranking
    by descending accuracy, ties broken by provider position — the same
    stable order as the reference's ``sorted(..., key=-accuracy)``.

    Values are grouped by provider count ``k`` so the ranking is one
    stable ``argsort`` per group and the triangular product is one masked
    ``prod`` over a ``(group, k, k)`` copy-probability gather.  The
    gather reads either the dense matrix or the sparse decided-pair
    lookup, per ``params.pair_layout`` (``"auto"`` goes sparse — with a
    logged warning — when ``n_sources ** 2 > DENSE_MATRIX_LIMIT``, where
    the dense matrix would not fit); unobserved pairs read 0 either way,
    so the factors are identical floats.
    """
    weights = np.ones(len(cols.prov_sources))
    counts = np.diff(cols.prov_offsets)
    layout = resolve_pair_layout(
        params.pair_layout,
        cols.n_sources,
        DENSE_MATRIX_LIMIT,
        "accu_kernel.independence_weight_stream",
    )
    if layout == "dense":
        matrix = copy_probability_matrix(detection, cols.n_sources)
    else:
        probs_map = sparse_copy_probabilities(detection, cols.n_sources)
    s = params.s
    for k in np.unique(counts):
        if k < 2:
            continue
        k = int(k)
        rows = np.nonzero(counts == k)[0]
        slots = cols.prov_offsets[rows][:, None] + np.arange(k)
        provs = cols.prov_sources[slots]  # (R, k)
        order = np.argsort(-accuracies[provs], axis=1, kind="stable")
        ranked = np.take_along_axis(provs, order, axis=1)
        # factors[r, i, j] = 1 - s * Pr(ranked_i -> ranked_j) for j < i;
        # everything on or above the diagonal multiplies as 1.
        if layout == "dense":
            gathered = matrix[ranked[:, :, None], ranked[:, None, :]]
        else:
            gathered = probs_map.gather(ranked[:, :, None], ranked[:, None, :])
        factors = 1.0 - s * gathered
        below = np.tril(np.ones((k, k), dtype=bool), -1)
        ranked_weights = np.where(below[None, :, :], factors, 1.0).prod(axis=2)
        unranked = np.empty_like(ranked_weights)
        np.put_along_axis(unranked, order, ranked_weights, axis=1)
        weights[slots] = unranked
    return weights


def value_probabilities_columnar(
    cols: FusionColumns,
    accuracies: Sequence[float] | np.ndarray,
    params: CopyParams,
    detection: DetectionResult | None = None,
) -> np.ndarray:
    """Vectorized :func:`repro.fusion.accu.value_probabilities`.

    Args:
        cols: the columnar claim structure.
        accuracies: current ``A(S)`` per source.
        params: model parameters.
        detection: a detection result to discount copied votes with
            (ACCUCOPY); plain ACCU when omitted.

    Returns:
        ``P(D.v)`` per value id, agreeing with the reference to within
        float re-association error (property-tested at 1e-9).
    """
    acc = np.asarray(accuracies, dtype=np.float64)
    scores = accuracy_scores(acc, params)
    votes = scores[cols.prov_sources]
    if detection is not None:
        votes = votes * independence_weight_stream(
            cols, acc, detection, params
        )
    vote_counts = np.bincount(
        cols.prov_value, weights=votes, minlength=cols.n_values
    )

    probabilities = np.zeros(cols.n_values)
    if cols.n_values == 0:
        return probabilities
    sorted_counts = vote_counts[cols.item_order]
    starts = cols.seg_starts[:-1]
    # Unobserved domain values: the item's domain holds the true value
    # plus n false ones; each unobserved value votes e^0 = 1.
    n_unobserved = np.maximum(params.n + 1 - cols.seg_sizes, 0)
    shift = np.maximum(np.maximum.reduceat(sorted_counts, starts), 0.0)
    exps = np.exp(sorted_counts - np.repeat(shift, cols.seg_sizes))
    denominator = n_unobserved * np.exp(-shift) + np.add.reduceat(exps, starts)
    probabilities[cols.item_order] = exps / np.repeat(
        denominator, cols.seg_sizes
    )
    return probabilities


def update_accuracies_columnar(
    cols: FusionColumns,
    probabilities: np.ndarray,
    params: CopyParams,
) -> np.ndarray:
    """Vectorized :func:`repro.fusion.accu.update_accuracies`.

    Sources with no claims keep a neutral accuracy of 0.5; results are
    clamped into the model's valid range.
    """
    probabilities = np.asarray(probabilities, dtype=np.float64)
    sums = np.bincount(
        cols.claim_sources,
        weights=probabilities[cols.claim_values],
        minlength=cols.n_sources,
    )
    counts = np.diff(cols.claim_offsets)
    means = np.where(counts > 0, sums / np.maximum(counts, 1), 0.5)
    return np.clip(means, params.accuracy_clamp, 1.0 - params.accuracy_clamp)
