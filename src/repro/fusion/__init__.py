"""Truth finding (data fusion): VOTE, ACCU/ACCUCOPY, and Dempster-Shafer."""

from .accu import (
    accuracy_score,
    choose_values,
    independence_weights,
    update_accuracies,
    value_probabilities,
)
from .credibility import CredibilityModel
from .ds import (
    DSRound,
    TotalConflictError,
    ds_value_probabilities,
    support_masses,
)
from .pipeline import (
    FUSION_METHOD_VALUES,
    FusionConfig,
    FusionResult,
    RoundDetector,
    RoundRecord,
    run_fusion,
)
from .voting import vote, vote_probabilities

__all__ = [
    "CredibilityModel",
    "DSRound",
    "FUSION_METHOD_VALUES",
    "FusionConfig",
    "FusionResult",
    "FusionWorkspace",
    "RoundDetector",
    "RoundRecord",
    "TotalConflictError",
    "accuracy_score",
    "choose_values",
    "ds_value_probabilities",
    "ds_value_probabilities_columnar",
    "independence_weights",
    "run_fusion",
    "support_masses",
    "update_accuracies",
    "value_probabilities",
    "vote",
    "vote_probabilities",
]


def __getattr__(name: str):
    """Lazy re-exports that would otherwise import NumPy eagerly.

    ``import repro`` (and therefore ``repro.fusion``) must stay
    NumPy-free until a numpy backend is actually requested — the same
    discipline :mod:`repro.core` follows for its kernels.
    """
    if name == "FusionWorkspace":
        from .workspace import FusionWorkspace

        return FusionWorkspace
    if name == "ds_value_probabilities_columnar":
        from .ds import ds_value_probabilities_columnar

        return ds_value_probabilities_columnar
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
