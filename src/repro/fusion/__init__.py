"""Truth finding (data fusion): VOTE, ACCU, and the ACCUCOPY loop."""

from .accu import (
    accuracy_score,
    choose_values,
    independence_weights,
    update_accuracies,
    value_probabilities,
)
from .pipeline import (
    FusionConfig,
    FusionResult,
    RoundDetector,
    RoundRecord,
    run_fusion,
)
from .voting import vote, vote_probabilities

__all__ = [
    "FusionConfig",
    "FusionResult",
    "FusionWorkspace",
    "RoundDetector",
    "RoundRecord",
    "accuracy_score",
    "choose_values",
    "independence_weights",
    "run_fusion",
    "update_accuracies",
    "value_probabilities",
    "vote",
    "vote_probabilities",
]


def __getattr__(name: str):
    """Lazy re-exports that would otherwise import NumPy eagerly.

    ``import repro`` (and therefore ``repro.fusion``) must stay
    NumPy-free until a numpy backend is actually requested — the same
    discipline :mod:`repro.core` follows for its kernels.
    """
    if name == "FusionWorkspace":
        from .workspace import FusionWorkspace

        return FusionWorkspace
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
