"""Truth finding (data fusion): VOTE, ACCU, and the ACCUCOPY loop."""

from .accu import (
    accuracy_score,
    choose_values,
    independence_weights,
    update_accuracies,
    value_probabilities,
)
from .pipeline import (
    FusionConfig,
    FusionResult,
    RoundDetector,
    RoundRecord,
    run_fusion,
)
from .voting import vote, vote_probabilities

__all__ = [
    "FusionConfig",
    "FusionResult",
    "RoundDetector",
    "RoundRecord",
    "accuracy_score",
    "choose_values",
    "independence_weights",
    "run_fusion",
    "update_accuracies",
    "value_probabilities",
    "vote",
    "vote_probabilities",
]
