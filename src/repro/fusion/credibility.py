"""Per-source credibility priors for the Dempster-Shafer fusion method.

ACCU/ACCUCOPY treat every source as equally believable a priori; real
deployments do not (a wire service and an anonymous blog are not the
same witness).  A :class:`CredibilityModel` carries a per-source prior
weight — loaded from configuration, a JSON/CSV file
(:meth:`CredibilityModel.from_file`), or the ``--credibility-file`` CLI
flag — and optionally decays each source's weight by its *observed*
error rate as the fusion loop re-estimates accuracies.

The model is deliberately NumPy-free (this module may be imported by
``repro.fusion`` before any numpy backend is requested) and its default
is provably neutral: a flat model (every prior exactly ``1.0``, zero
decay) multiplies every Dempster-Shafer mass by exactly ``1.0`` and
returns warm-start accuracies unchanged bit for bit, which is what makes
the DS-reduces-to-ACCU parity tests well-posed.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

#: Warm-start accuracies scaled by a non-flat prior are clamped into
#: this open interval so a zealous prior cannot push a source to a
#: degenerate 0/1 accuracy before it has provided a single claim.
_ACCURACY_PAD_CLAMP = 1e-3


@dataclass(frozen=True)
class CredibilityModel:
    """Per-source prior believability, with optional error-rate decay.

    Attributes:
        priors: prior weight per source, keyed by source *name* (the
            stable identity across streaming epochs) or by integer
            source id.  Weights must be finite and strictly positive;
            values above ``1.0`` are allowed (a hyper-trusted source)
            and the DS mass clamp keeps the math well-defined.
        default: weight of every source not listed in ``priors``.
        decay: error-rate sensitivity.  The *effective* credibility of a
            source with current accuracy ``A`` is
            ``prior * exp(-decay * (1 - A))`` — at the default ``0.0``
            the exponential is exactly ``1.0`` and the priors pass
            through untouched.
    """

    priors: Mapping[str | int, float] = field(default_factory=dict)
    default: float = 1.0
    decay: float = 0.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "priors", dict(self.priors))
        for key, weight in self.priors.items():
            if not (isinstance(weight, (int, float)) and math.isfinite(weight)):
                raise ValueError(f"credibility prior for {key!r} is not finite")
            if weight <= 0.0:
                raise ValueError(
                    f"credibility prior for {key!r} must be > 0, got {weight}"
                )
        if not (math.isfinite(self.default) and self.default > 0.0):
            raise ValueError(f"default credibility must be > 0, got {self.default}")
        if not (math.isfinite(self.decay) and self.decay >= 0.0):
            raise ValueError(f"credibility decay must be >= 0, got {self.decay}")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def flat(cls) -> "CredibilityModel":
        """The neutral model: every source weighs exactly ``1.0``."""
        return cls()

    @classmethod
    def from_file(cls, path: "Path | str", decay: float = 0.0) -> "CredibilityModel":
        """Load priors from a JSON object or a ``name,weight`` CSV file.

        JSON files must hold a single object mapping source names to
        positive weights (an optional ``"*"`` key sets the default);
        anything that fails to parse as JSON is read as CSV with one
        ``name,weight`` row per line (blank lines and ``#`` comments
        skipped, a ``*`` name sets the default).

        Raises:
            ValueError: unreadable file, malformed rows, or invalid
                weights (via the dataclass validation).
        """
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ValueError(f"cannot read credibility file {path}: {exc}")
        priors: dict[str, float] = {}
        default = 1.0
        try:
            payload = json.loads(text)
        except json.JSONDecodeError:
            payload = None
        if payload is not None:
            if not isinstance(payload, dict):
                raise ValueError(
                    f"{path}: JSON credibility file must hold one object"
                )
            entries = list(payload.items())
        else:
            entries = []
            for lineno, line in enumerate(text.splitlines(), start=1):
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                name, sep, weight = line.rpartition(",")
                if not sep:
                    raise ValueError(
                        f"{path}:{lineno}: expected 'name,weight', got {line!r}"
                    )
                entries.append((name.strip(), weight.strip()))
        for name, weight in entries:
            try:
                value = float(weight)
            except (TypeError, ValueError):
                raise ValueError(
                    f"{path}: credibility weight for {name!r} is not a number"
                )
            if name == "*":
                default = value
            else:
                priors[name] = value
        return cls(priors=priors, default=default, decay=decay)

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    @property
    def is_flat(self) -> bool:
        """True when the model is provably neutral (all weights 1.0)."""
        return (
            self.default == 1.0
            and self.decay == 0.0
            and all(weight == 1.0 for weight in self.priors.values())
        )

    def prior_for(self, source_id: int | None = None, name: str | None = None) -> float:
        """The prior weight of one source (name match wins over id)."""
        if name is not None and name in self.priors:
            return float(self.priors[name])
        if source_id is not None:
            if source_id in self.priors:
                return float(self.priors[source_id])
            key = str(source_id)
            if key in self.priors:
                return float(self.priors[key])
        return float(self.default)

    def effective(
        self, source_names: Sequence[str], accuracies: Sequence[float]
    ) -> list[float]:
        """Effective credibility per source under the current accuracies.

        ``prior * exp(-decay * (1 - A))`` per source; with ``decay == 0``
        the exponential factor is exactly ``1.0``, so a flat model
        returns exactly ``[1.0] * n_sources`` and the DS masses it
        multiplies are untouched bit for bit.
        """
        out = []
        for source_id, name in enumerate(source_names):
            prior = self.prior_for(source_id, name)
            if self.decay:
                prior *= math.exp(-self.decay * (1.0 - float(accuracies[source_id])))
            out.append(prior)
        return out

    def initial_accuracy_for(
        self,
        base: float,
        source_id: int | None = None,
        name: str | None = None,
    ) -> float:
        """Starting accuracy for a source never seen before.

        The streaming engine routes warm-start padding of *grown*
        sources through this instead of using ``base`` directly, so a
        configured prior shapes the first epoch a new source
        participates in.  A prior of exactly ``1.0`` returns ``base``
        unchanged (bit for bit — the flat-model parity guarantee);
        anything else scales ``base`` by the prior and clamps it into
        the open unit interval.
        """
        prior = self.prior_for(source_id, name)
        if prior == 1.0:
            return base
        return min(max(base * prior, _ACCURACY_PAD_CLAMP), 1.0 - _ACCURACY_PAD_CLAMP)
