"""Dempster-Shafer truth finding with credibility-weighted evidence.

An alternative to the ACCU softmax (:mod:`repro.fusion.accu`) that makes
two things first-class which ACCU cannot express:

* **Explicit uncertainty** — a source's claim is a *simple support
  function* over the item's frame of discernment Θ (the true-value
  candidates): mass ``m({v}) = w`` on its claimed value and
  ``m(Θ) = 1 - w`` on "I don't know".  The support
  ``w = credibility * (1 - uncertainty) * (1 - 1/odds) * I`` combines
  the source's accuracy odds ``n A / (1 - A)`` (exactly ACCU's vote
  odds), its :class:`~repro.fusion.credibility.CredibilityModel` weight,
  a global ``uncertainty`` reserve, and — when a detection result is
  given — the same ACCUCOPY independence discount ``I`` that deflates a
  later copier's vote by the detected copy probability.
* **Conflict** — Dempster's rule surfaces the mass ``K`` assigned to
  contradictory evidence per item, a diagnostic ACCU silently
  renormalises away.  ``K`` rides on every
  :class:`~repro.fusion.pipeline.RoundRecord` and in ``explain``.

Because every focal element is a singleton or Θ, Dempster combination
has a closed form — no ``2^|Θ|`` enumeration.  With ``q_S = 1 - w_S``
and per-value log-sums ``L_v = sum_{S in sup(v)} ln q_S``,
``L_item = sum_v L_v``:

    m̂({v}) = exp(L_item - L_v) * (1 - exp(L_v))
    m̂(Θ)   = exp(L_item)
    T       = m̂(Θ) + sum_v m̂({v})        K = 1 - T

Conflict compounds with witness count (Zadeh's classic observation):
a dense item with a dozen confident providers split across two values
has ``T ~ q^6`` — far below any fixed epsilon while the *ratios*
between masses stay perfectly well-conditioned.  The implementation
therefore renormalises scale-free, exactly the way ACCU's softmax
max-shifts its vote counts: with ``shift = min_v L_v``,

    sm_v = exp(shift - L_v) - exp(shift)       (= exp(shift) m̂_v / m̂(Θ))
    st   = exp(shift)                          (= exp(shift) m̂(Θ) / m̂(Θ))
    D    = st + sum_v sm_v                     (>= 1/2 always)

and the pignistic pick ``BetP(v) = (sm_v + st/|Θ|) / D`` with
``|Θ| = max(n + 1, k)`` — the same domain convention as ACCU's ``n``
unobserved false values — never divides by a vanishing quantity and
per-item probabilities sum to at most 1, exactly like ACCU's.  The
true total mass ``T = exp(L_item - shift) * D`` is only needed for the
conflict diagnostic ``K = 1 - T``.

**ACCU parity.**  With flat credibility, zero uncertainty and no
detection, ``1/q_S`` is the vote odds, so
``1 - exp(L_v) = 1 - exp(-vote_count(v))`` is strictly increasing in
ACCU's vote count whenever every source's odds exceed 1; the per-item
``exp(L_item - L_v)`` and pignistic Θ-share are shared across the
item's values, so the ranking — and therefore the fused truth under
:func:`~repro.fusion.accu.choose_values` — matches ACCU's.

Total conflict — enough maximally-confident contradicting witnesses
that ``T`` underflows to float zero, i.e. ``K = 1`` to full double
precision — raises :class:`TotalConflictError` naming the item instead
of reporting verdicts from evidence the float format can no longer
weigh; the caller should lower credibility or raise the uncertainty
reserve.  (Dempster's rule is undefined at exact total conflict; the
``MAX_SUPPORT`` clamp keeps ``T`` mathematically positive, so float
underflow is the only way to reach it.)

Two implementations with the library's standard lockstep contract: the
pure-Python reference :func:`ds_value_probabilities` and the vectorized
:func:`ds_value_probabilities_columnar` over
:class:`~repro.fusion.accu_kernel.FusionColumns`, conformance-checked
against each other at 1e-9 per round on bit-identical inputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..core.params import CopyParams
from ..core.result import DetectionResult
from .accu import independence_weights

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..data import Dataset
    from .accu_kernel import FusionColumns

#: Hard cap on a single claim's support mass: no witness is ever fully
#: certain, which keeps every ``ln(1 - w)`` finite and the combined
#: mass mathematically positive.  Reaching *float* total conflict
#: therefore takes dozens of maximally-boosted contradicting sources —
#: exactly the configuration :class:`TotalConflictError` diagnoses.
MAX_SUPPORT = 1.0 - 1e-9


class TotalConflictError(ValueError):
    """Dempster combination hit total conflict (``K = 1``) on an item.

    Raised when an item's combined mass underflows to float zero —
    every surviving ratio between its masses is below double precision,
    so renormalising would report verdicts the evidence can no longer
    weigh.  (High-but-representable conflict is *not* an error: dense
    items routinely reach ``K ~ 1 - 1e-19`` and the scale-free
    renormalisation handles them exactly; see the module docstring.)
    The offending item id is carried in :attr:`item_id`; the fix is a
    lower credibility boost or a non-zero uncertainty reserve.
    """

    def __init__(self, item_id: int, total_mass: float):
        super().__init__(
            f"total conflict on item {item_id}: combined mass "
            f"underflowed to {total_mass:.3e} (K = 1 at full double "
            f"precision); lower the credibility boost or raise "
            f"ds_uncertainty"
        )
        self.item_id = item_id
        self.total_mass = total_mass


@dataclass
class DSRound:
    """One Dempster-Shafer combination pass over every item.

    Attributes:
        probabilities: pignistic ``BetP`` per value id (list from the
            reference loop, ``np.ndarray`` from the columnar kernel);
            an item's entries sum to at most 1, like ACCU's.
        conflict: Dempster conflict degree ``K in [0, 1]`` per
            *represented* item id — the per-item diagnostic surfaced on
            :class:`~repro.fusion.pipeline.RoundRecord`.
    """

    probabilities: "Sequence[float]"
    conflict: dict[int, float]


def support_masses(
    accuracies: Sequence[float],
    params: CopyParams,
    credibility: Sequence[float] | None = None,
    uncertainty: float = 0.0,
) -> list[float]:
    """Per-source claim support ``w_S`` before any copy discount.

    ``w = credibility * (1 - uncertainty) * (1 - 1/odds)`` with
    ``odds = n A / (1 - A)`` (accuracy clamped as everywhere else),
    clipped into ``[0, MAX_SUPPORT]``.  A source whose odds do not beat
    an unobserved domain value (``odds <= 1``) supports nothing.
    """
    scale = 1.0 - uncertainty
    masses = []
    for source_id, accuracy in enumerate(accuracies):
        a = params.clamp_accuracy(accuracy)
        odds = params.n * a / (1.0 - a)
        w = (1.0 - 1.0 / odds) * scale
        if credibility is not None:
            w *= credibility[source_id]
        masses.append(min(max(w, 0.0), MAX_SUPPORT))
    return masses


def ds_value_probabilities(
    dataset: "Dataset",
    accuracies: Sequence[float],
    params: CopyParams,
    detection: DetectionResult | None = None,
    credibility: Sequence[float] | None = None,
    uncertainty: float = 0.0,
) -> DSRound:
    """The reference Dempster-Shafer combination (pure-Python loops).

    Args:
        dataset: the claims.
        accuracies: current ``A(S)`` per source.
        params: model parameters (``n`` sizes the frame of discernment).
        detection: a detection result; a copier's mass is deflated by
            :func:`~repro.fusion.accu.independence_weights` before
            combination, exactly as ACCUCOPY discounts its votes.
        credibility: *effective* per-source credibility weights (see
            :meth:`~repro.fusion.credibility.CredibilityModel.effective`);
            ``None`` is the flat model.
        uncertainty: global mass reserve shifted from every claim onto
            Θ (``0 <= uncertainty < 1``).

    Returns:
        The round's :class:`DSRound` (pignistic probabilities per value
        id + conflict degree per represented item).

    Raises:
        TotalConflictError: an item's evidence is totally conflicting.
    """
    base = support_masses(accuracies, params, credibility, uncertainty)
    log_q = [0.0] * dataset.n_values
    for value_id, providers in enumerate(dataset.providers):
        if detection is not None and len(providers) >= 2:
            weights = independence_weights(providers, accuracies, detection, params)
        else:
            weights = None
        total = 0.0
        for position, source in enumerate(providers):
            w = base[source]
            if weights is not None:
                w = min(max(w * weights[position], 0.0), MAX_SUPPORT)
            total += math.log1p(-w)
        log_q[value_id] = total

    probabilities = [0.0] * dataset.n_values
    conflict: dict[int, float] = {}
    for item_id, values in enumerate(dataset.item_value_table()):
        if not values:
            continue
        l_item = sum(log_q[v] for v in values)
        shift = min(log_q[v] for v in values)
        e_shift = math.exp(shift)
        # Scale-free masses: sm_v = exp(shift) * m̂({v}) / m̂(Θ), so the
        # best-supported value's mass is ~1 and the denominator never
        # vanishes (see the module docstring).
        scaled = [math.exp(shift - log_q[v]) - e_shift for v in values]
        denom = e_shift + sum(scaled)
        total_mass = math.exp(l_item - shift) * denom
        if total_mass == 0.0:
            raise TotalConflictError(item_id, total_mass)
        conflict[item_id] = min(max(1.0 - total_mass, 0.0), 1.0)
        domain = max(params.n + 1, len(values))
        theta_share = e_shift / domain
        for value_id, mass in zip(values, scaled):
            probabilities[value_id] = (mass + theta_share) / denom
    return DSRound(probabilities=probabilities, conflict=conflict)


def ds_value_probabilities_columnar(
    cols: "FusionColumns",
    accuracies,
    params: CopyParams,
    detection: DetectionResult | None = None,
    credibility: Sequence[float] | None = None,
    uncertainty: float = 0.0,
) -> DSRound:
    """Vectorized :func:`ds_value_probabilities` over a claim layout.

    Same math as the reference — per-provider supports, ``log1p`` sums
    per value, segment reductions per item over ``cols.item_order`` —
    with the ACCUCOPY discount coming from
    :func:`~repro.fusion.accu_kernel.independence_weight_stream`.
    Agrees with the reference within float re-association error
    (lockstep conformance at 1e-9).

    Raises:
        TotalConflictError: an item's evidence is totally conflicting.
    """
    import numpy as np

    from .accu_kernel import independence_weight_stream

    acc = np.asarray(accuracies, dtype=np.float64)
    a = np.clip(acc, params.accuracy_clamp, 1.0 - params.accuracy_clamp)
    odds = params.n * a / (1.0 - a)
    w_source = (1.0 - 1.0 / odds) * (1.0 - uncertainty)
    if credibility is not None:
        w_source = w_source * np.asarray(credibility, dtype=np.float64)
    w_source = np.clip(w_source, 0.0, MAX_SUPPORT)

    w = w_source[cols.prov_sources]
    if detection is not None:
        w = np.clip(
            w * independence_weight_stream(cols, acc, detection, params),
            0.0,
            MAX_SUPPORT,
        )
    log_q = np.bincount(
        cols.prov_value, weights=np.log1p(-w), minlength=cols.n_values
    )

    probabilities = np.zeros(cols.n_values)
    if cols.n_values == 0:
        return DSRound(probabilities=probabilities, conflict={})
    sorted_lq = log_q[cols.item_order]
    starts = cols.seg_starts[:-1]
    l_item = np.add.reduceat(sorted_lq, starts)
    shift = np.minimum.reduceat(sorted_lq, starts)
    e_shift = np.exp(shift)
    # Scale-free masses, same shift as the reference loop (module doc).
    scaled = np.exp(np.repeat(shift, cols.seg_sizes) - sorted_lq) - np.repeat(
        e_shift, cols.seg_sizes
    )
    denom = e_shift + np.add.reduceat(scaled, starts)
    total_mass = np.exp(l_item - shift) * denom
    conflicted = np.nonzero(total_mass == 0.0)[0]
    if len(conflicted):
        segment = int(conflicted[0])
        raise TotalConflictError(
            int(cols.seg_items[segment]), float(total_mass[segment])
        )
    domain = np.maximum(params.n + 1, cols.seg_sizes)
    theta_share = e_shift / domain
    probabilities[cols.item_order] = (
        scaled + np.repeat(theta_share, cols.seg_sizes)
    ) / np.repeat(denom, cols.seg_sizes)
    conflict_k = np.clip(1.0 - total_mass, 0.0, 1.0)
    conflict = dict(
        zip((int(i) for i in cols.seg_items), (float(k) for k in conflict_k))
    )
    return DSRound(probabilities=probabilities, conflict=conflict)
