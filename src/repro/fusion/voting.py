"""Naive voting — the simplest truth-finding baseline.

Each source casts one equal vote per claim; the value with the most votes
wins its item.  Li et al. (VLDB 2013) showed voting fixes none of the
copying-induced errors that the accuracy- and copying-aware models below
repair; it is included as the floor every other fuser is measured against.
"""

from __future__ import annotations

from ..data import Dataset


def vote(dataset: Dataset) -> dict[int, int]:
    """Pick the most-provided value per item.

    **Tie contract.**  Ties break toward the lowest value id.  Value ids
    are interned in first-appearance order of ``(item, value)`` pairs —
    identically by ``DatasetBuilder`` and ``ClaimLedger`` — so the
    winner of a tie is the value *claimed first*, a property of the
    claim stream itself, not of any container's iteration quirks.  The
    copy-detection bootstrap (:func:`vote_probabilities`) therefore sees
    the same deterministic input however the dataset was built.

    Values with zero remaining providers (possible after ``ClaimLedger``
    retractions; never produced by ``DatasetBuilder``) are skipped: a
    value nobody currently claims cannot win, which keeps ``vote``
    consistent with :func:`vote_probabilities` assigning it probability
    0.  An item whose values were *all* retracted gets no winner.

    Returns:
        Mapping ``item_id -> winning value_id`` for every claimed item.
    """
    best: dict[int, tuple[int, int]] = {}  # item -> (-votes, value_id)
    providers = dataset.providers
    for value_id, provider_list in enumerate(providers):
        if not provider_list:  # retracted: see the tie contract above
            continue
        item_id = dataset.value_item[value_id]
        key = (-len(provider_list), value_id)
        if item_id not in best or key < best[item_id]:
            best[item_id] = key
    return {item: value for item, (_, value) in best.items()}


def vote_probabilities(dataset: Dataset) -> list[float]:
    """Vote shares as pseudo-probabilities (per value id).

    ``P(v) = votes(v) / votes(item)`` — useful as a copy-detection input
    when no accuracy model is wanted.  Deterministic under the same
    contract as :func:`vote`: shares depend only on provider counts, so
    ``DatasetBuilder`` and ``ClaimLedger`` builds of the same claim
    stream produce identical vectors; zero-provider values score 0.0
    (and an all-retracted item's values all score 0.0, matching
    :func:`vote` electing no winner there).
    """
    totals = [0] * dataset.n_items
    for value_id, provider_list in enumerate(dataset.providers):
        totals[dataset.value_item[value_id]] += len(provider_list)
    probabilities = []
    for value_id, provider_list in enumerate(dataset.providers):
        total = totals[dataset.value_item[value_id]]
        probabilities.append(len(provider_list) / total if total else 0.0)
    return probabilities
