"""ACCU / ACCUCOPY value probabilities and source accuracies.

This is the truth-finding model of Dong, Berti-Equille & Srivastava
(VLDB 2009) that the paper plugs its detectors into:

* Each source ``S`` has an *accuracy score* ``A'(S) = ln(n A(S) / (1-A(S)))``
  — the log-odds of providing a truth, normalised by the ``n`` uniformly
  distributed false values.
* The *vote count* of a value is the sum of its providers' accuracy
  scores; with copy detection enabled, each provider's score is discounted
  by the probability that it provided the value *independently* rather
  than copying it from a higher-ranked co-provider (ACCUCOPY).
* Value probabilities follow a softmax over the item's value domain: the
  observed values' vote counts compete against the remaining unobserved
  domain values, each of which carries a neutral vote count of 0.
* A source's accuracy is then re-estimated as the mean probability of the
  values it provides.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..core.params import CopyParams
from ..core.result import DetectionResult
from ..data import Dataset


def accuracy_score(accuracy: float, params: CopyParams) -> float:
    """``A'(S) = ln(n A / (1 - A))`` with the standard clamp applied."""
    a = params.clamp_accuracy(accuracy)
    return math.log(params.n * a / (1.0 - a))


def independence_weights(
    providers: Sequence[int],
    accuracies: Sequence[float],
    detection: DetectionResult,
    params: CopyParams,
) -> list[float]:
    """ACCUCOPY's per-provider discount for one value.

    Providers are ranked by accuracy (descending); provider ``S`` keeps
    the fraction of its vote equal to the probability that it did *not*
    copy the value from any higher-ranked co-provider:

        I(S) = prod_{S' ranked above S} (1 - s * Pr(S -> S' | Phi)).

    Returns weights aligned with the input ``providers`` order.
    """
    ranked = sorted(range(len(providers)), key=lambda i: -accuracies[providers[i]])
    weights = [1.0] * len(providers)
    for rank, idx in enumerate(ranked):
        copier = providers[idx]
        weight = 1.0
        for earlier in ranked[:rank]:
            original = providers[earlier]
            p_copy = detection.copy_probability(copier, original)
            if p_copy > 0.0:
                weight *= 1.0 - params.s * p_copy
        weights[idx] = weight
    return weights


def value_probabilities(
    dataset: Dataset,
    accuracies: Sequence[float],
    params: CopyParams,
    detection: DetectionResult | None = None,
) -> list[float]:
    """Compute ``P(D.v)`` for every value id.

    Args:
        dataset: the claims.
        accuracies: current ``A(S)`` per source.
        params: model parameters (``n`` sizes the false-value domain).
        detection: a detection result to discount copied votes with
            (ACCUCOPY); plain ACCU when omitted.

    Returns:
        Probability per value id.  Probabilities of the values of one item
        sum to at most 1 (the remainder is the unobserved false values'
        share of the domain).
    """
    scores = [accuracy_score(a, params) for a in accuracies]
    vote_counts = [0.0] * dataset.n_values
    for value_id, providers in enumerate(dataset.providers):
        if detection is not None and len(providers) >= 2:
            weights = independence_weights(providers, accuracies, detection, params)
        else:
            weights = None
        count = 0.0
        for position, source in enumerate(providers):
            weight = weights[position] if weights is not None else 1.0
            count += scores[source] * weight
        vote_counts[value_id] = count

    item_values = dataset.item_value_table()
    probabilities = [0.0] * dataset.n_values
    for values in item_values:
        if not values:
            continue
        counts = [vote_counts[v] for v in values]
        # Unobserved domain values: the item's domain holds the true value
        # plus n false ones; each unobserved value votes e^0 = 1.
        n_unobserved = max(params.n + 1 - len(values), 0)
        shift = max(max(counts), 0.0)
        denominator = n_unobserved * math.exp(-shift) + sum(
            math.exp(c - shift) for c in counts
        )
        for value_id, count in zip(values, counts):
            probabilities[value_id] = math.exp(count - shift) / denominator
    return probabilities


def update_accuracies(
    dataset: Dataset,
    probabilities: Sequence[float],
    params: CopyParams,
) -> list[float]:
    """Re-estimate ``A(S)`` as the mean probability of S's claimed values.

    Sources with no claims keep a neutral accuracy of 0.5.  Results are
    clamped into the model's valid range.
    """
    accuracies = []
    for claim in dataset.claims:
        if not claim:
            accuracies.append(0.5)
            continue
        mean = sum(probabilities[value_id] for value_id in claim.values()) / len(claim)
        accuracies.append(params.clamp_accuracy(mean))
    return accuracies


def choose_values(dataset: Dataset, probabilities: Sequence[float]) -> dict[int, int]:
    """Pick the highest-probability value per item (ties: lowest value id)."""
    best: dict[int, tuple[float, int]] = {}
    for value_id in range(dataset.n_values):
        item_id = dataset.value_item[value_id]
        key = (-probabilities[value_id], value_id)
        if item_id not in best or key < best[item_id]:
            best[item_id] = key
    return {item: value for item, (_, value) in best.items()}
