"""Round-persistent workspace for the iterative fusion loop.

Every fusion round used to pay the full per-round setup bill: the
shared-item counts were recounted (or re-fetched from per-detector
caches), the index entries were re-columnarized with per-entry Python
loops, the parallel engine allocated a fresh shared-memory block and
spun up — then tore down — a fresh process pool.  None of that state
actually changes across rounds: the claims are static, so the provider
structure, the shared-item counts and the columnar claim layout are
round-invariant; only probabilities and accuracies move.

:class:`FusionWorkspace` freezes the invariant parts once and reuses
them for every round of a :func:`~repro.fusion.run_fusion` call:

* ``shared_items`` — the ``l(S1, S2)`` counts, computed once with the
  backend-appropriate counter.
* ``fusion_columns`` — the :class:`~repro.fusion.accu_kernel.FusionColumns`
  claim layout driving the vectorized ACCU/ACCUCOPY updates.
* an **entry skeleton** — the provider CSR of every multi-provider value
  in canonical (value-id) order.  :meth:`columnar_for_index` assembles a
  round's :class:`~repro.core.kernel.ColumnarEntries` from it with one
  vectorized gather in index processing order, replacing the per-entry
  Python loops of ``ColumnarEntries.from_index``.
* a **persistent executor pool** per kind (threads / processes), created
  on first use and reused across rounds; worker processes keep their
  per-process shared-memory attachment caches warm.
* a **persistent shared-memory block**: each round re-broadcasts only
  probabilities, main/tail flags and accuracies by rewriting the block
  in place (:meth:`~repro.parallel.shm.SharedWorld.write`), so workers
  never re-attach and the block is created — and unlinked — exactly
  once.

Lifecycle: the workspace is a context manager.  ``run_fusion`` creates
one internally when none is passed and closes it on the way out —
**including on detector exceptions** — while an explicitly passed
workspace stays open for the caller to reuse (and close) across several
fusion runs.  :meth:`close` is idempotent: pools are shut down and the
shared block is unlinked at most once.
"""

from __future__ import annotations

import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import TYPE_CHECKING, Sequence

from ..core.params import CopyParams
from ..data import Dataset
from ..parallel.engine import _pool_workers

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.index import InvertedIndex
    from ..core.kernel import ColumnarEntries
    from ..cluster.executor import ClusterExecutor
    from ..parallel.shm import SharedWorld
    from .accu_kernel import FusionColumns


class FusionWorkspace:
    """Frozen cross-round state of one dataset's fusion run.

    Args:
        dataset: the claims (static across rounds).
        params: model parameters; ``params.backend`` routes the
            shared-item counter (the counts themselves are identical
            either way).
    """

    def __init__(self, dataset: Dataset, params: CopyParams):
        self.dataset = dataset
        self.params = params
        self.closed = False
        self._shared_items = None
        self._fusion_columns: "FusionColumns" | None = None
        self._skeleton: "ColumnarEntries" | None = None
        self._value_row = None
        self._pools: dict[str, Executor] = {}
        self._world: "SharedWorld" | None = None
        self._clusters: dict[tuple, "ClusterExecutor"] = {}

    # ------------------------------------------------------------------
    # Static structure caches
    # ------------------------------------------------------------------
    @property
    def shared_items(self):
        """``l(S1, S2)`` counts, computed once (claims never change)."""
        if self._shared_items is None:
            if self.params.backend == "numpy":
                from ..core.kernel import count_shared_items_columnar as count
            else:
                from ..simjoin import count_shared_items as count

            self._shared_items = count(self.dataset)
        return self._shared_items

    @property
    def fusion_columns(self) -> "FusionColumns":
        """Columnar claim layout for the vectorized ACCU/ACCUCOPY math."""
        if self._fusion_columns is None:
            from .accu_kernel import FusionColumns

            self._fusion_columns = FusionColumns.from_dataset(self.dataset)
        return self._fusion_columns

    def _entry_skeleton(self):
        """Provider CSR of every multi-provider value, value-id order.

        Returns ``(skeleton, value_row)``: a :class:`ColumnarEntries`
        whose per-entry probabilities/main flags are placeholders, plus
        the value-id -> skeleton-row map (-1 for single-provider values,
        which never enter an index).
        """
        if self._skeleton is None:
            import numpy as np

            from ..core.kernel import ColumnarEntries

            fc = self.fusion_columns
            rows = np.nonzero(np.diff(fc.prov_offsets) >= 2)[0]
            # View every value's provider CSR as a columnar block and let
            # the kernel's tested gather slice out the multi-provider rows.
            all_values = ColumnarEntries(
                probs=np.zeros(fc.n_values),
                main=np.ones(fc.n_values, dtype=bool),
                offsets=fc.prov_offsets,
                providers=fc.prov_sources,
            )
            self._skeleton = all_values.take(rows)
            value_row = np.full(fc.n_values, -1, dtype=np.int64)
            value_row[rows] = np.arange(len(rows), dtype=np.int64)
            self._value_row = value_row
        return self._skeleton, self._value_row

    def columnar_for_index(self, index: "InvertedIndex") -> "ColumnarEntries":
        """Assemble a round's columnar entries from the frozen skeleton.

        Produces exactly what ``ColumnarEntries.from_index(index)``
        would — entries in processing order, this round's probabilities,
        this round's tail split — but the provider gather is one
        vectorized ``take`` over the skeleton instead of per-entry
        Python loops; only the O(entries) probability/value-id reads
        remain at Python level.
        """
        import numpy as np

        skeleton, value_row = self._entry_skeleton()
        entries = index.entries
        n_entries = len(entries)
        values = np.fromiter(
            (entry.value_id for entry in entries), dtype=np.int64, count=n_entries
        )
        cols = skeleton.take(value_row[values])
        cols.probs = np.fromiter(
            (entry.probability for entry in entries),
            dtype=np.float64,
            count=n_entries,
        )
        cols.main = np.arange(n_entries, dtype=np.int64) < index.tail_start
        return cols

    # ------------------------------------------------------------------
    # Persistent executors + shared-memory broadcast
    # ------------------------------------------------------------------
    def pool(self, executor: str, n_tasks: int = 0) -> Executor | None:
        """The persistent pool for an executor kind (None for serial).

        Created on first use and reused by every subsequent round until
        :meth:`close`.  Always sized to the core count (both pool kinds
        start workers lazily, on demand), never to the first caller's
        task count — a later run with more partitions must not be capped
        by an earlier, narrower one.
        """
        if self.closed:
            raise RuntimeError("the fusion workspace is closed")
        if executor == "serial":
            return None
        pool = self._pools.get(executor)
        if pool is not None and getattr(pool, "_broken", False):
            # A worker died (BrokenProcessPool): the pool is unusable for
            # every future round.  Retire it and build a fresh one so one
            # crashed worker doesn't poison the rest of the fusion run.
            pool.shutdown(wait=False)
            self._pools.pop(executor, None)
            pool = None
        if pool is None:
            workers = _pool_workers(os.cpu_count() or 1)
            if executor == "threads":
                pool = ThreadPoolExecutor(max_workers=workers)
            elif executor == "processes":
                pool = ProcessPoolExecutor(max_workers=workers)
            else:
                raise ValueError(f"unknown executor {executor!r}")
            self._pools[executor] = pool
        return pool

    def cluster(self, addresses) -> "ClusterExecutor":
        """The persistent remote-cluster executor for a worker list.

        The remote analogue of :meth:`pool`: the first round dials the
        workers, later rounds reuse the open connections — and, because
        :class:`~repro.cluster.executor.ClusterExecutor` caches the last
        world it shipped per session, reuse is what turns the per-round
        broadcast into the cheap ``world-update`` diff.  Keyed by the
        address tuple so one workspace can serve runs against different
        clusters; every executor is closed by :meth:`close`.

        Raises:
            RuntimeError: when the workspace is closed.
            ClusterError: when a worker cannot be reached.
        """
        if self.closed:
            raise RuntimeError("the fusion workspace is closed")
        from ..cluster.executor import ClusterExecutor

        key = tuple((host, port) for host, port in addresses)
        executor = self._clusters.get(key)
        if executor is None:
            executor = ClusterExecutor(key)
            self._clusters[key] = executor
        return executor

    def broadcast(
        self,
        cols: "ColumnarEntries",
        accuracies: Sequence[float],
        n_sources: int,
    ) -> "SharedWorld":
        """The persistent shared-memory world, freshened for this round.

        The first call creates the block; later calls rewrite it in
        place (same name, same layout — workers keep their cached
        attachments).  A layout change (impossible within one fusion
        run, where the entry set is frozen) falls back to a fresh block.

        Raises:
            OSError: when shared memory is unavailable (callers fall
                back to pickled payloads, exactly as without a
                workspace).
        """
        if self.closed:
            raise RuntimeError("the fusion workspace is closed")
        from ..parallel.shm import SharedWorld

        if self._world is not None and self._world.write(cols, accuracies):
            return self._world
        if self._world is not None:
            self._world.close()
            self._world = None
        self._world = SharedWorld.create(cols, accuracies, n_sources)
        return self._world

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def rebind(self, dataset: Dataset) -> None:
        """Point the workspace at a new dataset, keeping pools and shm.

        The streaming service's claim ledger produces a fresh immutable
        :class:`Dataset` every epoch, which invalidates the dataset-derived
        caches (shared-item counts, fusion columns, entry skeleton) — but
        *not* the expensive runtime state: the persistent executor pools
        keep their warm workers, and the shared-memory block is reused as
        long as the columnar layout still fits (:meth:`broadcast` already
        falls back to a fresh block on a layout change).  Rebinding to the
        same dataset object is a no-op.

        Raises:
            RuntimeError: when the workspace is closed.
        """
        if self.closed:
            raise RuntimeError("the fusion workspace is closed")
        if dataset is self.dataset:
            return
        self.dataset = dataset
        self._shared_items = None
        self._fusion_columns = None
        self._skeleton = None
        self._value_row = None

    def close(self) -> None:
        """Shut down pools and unlink the shared block (idempotent)."""
        if self.closed:
            return
        self.closed = True
        for pool in self._pools.values():
            pool.shutdown(wait=True)
        self._pools.clear()
        for executor in self._clusters.values():
            executor.close()
        self._clusters.clear()
        if self._world is not None:
            self._world.close()
            self._world = None

    def __enter__(self) -> "FusionWorkspace":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
