"""The iterative fusion loop: copy detection + truth finding + accuracies.

Value probabilities and source accuracies are unknown a priori, and copy
detection needs both; so the literature (and the paper's Section II)
iterates:  starting from uniform accuracies, each round (1) detects
copying under the current estimates, (2) recomputes value probabilities
with copied votes discounted, and (3) re-estimates source accuracies —
until the accuracies stabilise.  Table II of the paper shows five such
rounds on the motivating example.

Any object with the ``run_round(round_no, dataset, probabilities,
accuracies)`` interface can serve as the detector — the stateless
:class:`~repro.core.SingleRoundDetector` wrappers, the stateful
:class:`~repro.core.IncrementalDetector`, or ``None`` for a copy-oblivious
ACCU run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol, Sequence

from ..core.params import BACKENDS, CopyParams
from ..core.result import DetectionResult
from ..data import Dataset
from .accu import choose_values, update_accuracies, value_probabilities
from .credibility import CredibilityModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from pathlib import Path

    from ..serving.store import VerdictStore
    from .workspace import FusionWorkspace

#: Valid ``FusionConfig.fusion_method`` values: the ACCU/ACCUCOPY
#: softmax (the paper's model) or Dempster-Shafer combination with
#: credibility priors and per-item conflict diagnostics.
FUSION_METHOD_VALUES = ("accu", "ds")


class RoundDetector(Protocol):
    """Anything that can detect copying once per fusion round."""

    def run_round(
        self,
        round_no: int,
        dataset: Dataset,
        probabilities: Sequence[float],
        accuracies: Sequence[float],
    ) -> DetectionResult:  # pragma: no cover - protocol
        """Detect copying under the round's current estimates."""
        ...


@dataclass(frozen=True)
class FusionConfig:
    """Knobs of the iterative loop.

    Attributes:
        max_rounds: hard cap on rounds (the paper's datasets converge in
            5-9).
        tolerance: convergence threshold on the maximum accuracy change.
            The default stops once accuracies move by less than 0.02 —
            past that point copy decisions no longer change (and the
            paper's runs finish in a similar number of rounds).
        min_rounds: never stop before this many rounds (copy decisions
            swing in the first two rounds; see Section VI footnote 7).
        initial_accuracy: the uniform starting accuracy.
        initial_accuracies: per-source starting accuracies overriding the
            uniform ``initial_accuracy``.  The streaming engine warm-starts
            each epoch from the previous epoch's converged accuracies so
            the loop re-converges in a couple of rounds instead of from
            scratch.  Must have one entry per source when given.
        fusion_method: the truth-finding update — ``"accu"`` (the
            paper's ACCU/ACCUCOPY softmax, the default) or ``"ds"``
            (Dempster-Shafer combination, :mod:`repro.fusion.ds`: mass
            functions weighted by accuracy x credibility, per-item
            conflict degree ``K`` on every :class:`RoundRecord`,
            pignistic truths).
        credibility: per-source priors for the DS method
            (:class:`~repro.fusion.credibility.CredibilityModel`);
            ``None`` means the flat model.  Rejected when
            ``fusion_method == "accu"`` — the ACCU math has no slot for
            it, and silently ignoring a configured prior would be worse
            than failing.
        ds_uncertainty: mass reserve each DS claim leaves on Θ
            (``0 <= ds_uncertainty < 1``); like ``credibility``, a
            non-default value is rejected when ``fusion_method`` is
            ``"accu"``.
    """

    max_rounds: int = 12
    tolerance: float = 0.02
    min_rounds: int = 3
    initial_accuracy: float = 0.8
    initial_accuracies: Sequence[float] | None = None
    fusion_method: str = "accu"
    credibility: CredibilityModel | None = None
    ds_uncertainty: float = 0.0


@dataclass
class RoundRecord:
    """What happened in one fusion round.

    ``conflict`` is the Dempster conflict degree ``K in [0, 1]`` per
    represented item id — populated by the ``"ds"`` fusion method,
    ``None`` under ``"accu"`` (whose softmax has no conflict notion).
    """

    round_no: int
    detection: DetectionResult | None
    accuracy_change: float
    detection_seconds: float
    fusion_seconds: float
    conflict: dict[int, float] | None = None


@dataclass
class FusionResult:
    """Final state of a fusion run.

    Attributes:
        probabilities: final ``P(D.v)`` per value id.
        accuracies: final ``A(S)`` per source id.
        chosen: fused truth — ``item_id -> value_id``.
        rounds: per-round records (detection results, timings).
        converged: whether the tolerance was met before ``max_rounds``.
        snapshot_ids: per-round verdict-store snapshot ids, when the run
            published to one (``run_fusion(snapshot_store=...)``); empty
            otherwise.
        credibility: effective per-source credibility under the final
            accuracies (``"ds"`` runs only; ``None`` under ``"accu"``).
    """

    probabilities: list[float]
    accuracies: list[float]
    chosen: dict[int, int]
    rounds: list[RoundRecord] = field(default_factory=list)
    converged: bool = False
    snapshot_ids: list[int] = field(default_factory=list)
    credibility: list[float] | None = None

    @property
    def n_rounds(self) -> int:
        """Number of rounds the loop actually ran."""
        return len(self.rounds)

    def final_conflict(self) -> dict[int, float] | None:
        """The last round's per-item conflict degrees (DS runs only)."""
        for record in reversed(self.rounds):
            if record.conflict is not None:
                return record.conflict
        return None

    @property
    def detection_seconds(self) -> float:
        """Total copy-detection time across rounds."""
        return sum(r.detection_seconds for r in self.rounds)

    @property
    def total_computations(self) -> int:
        """Total copy-detection computations across rounds."""
        return sum(
            r.detection.cost.computations for r in self.rounds if r.detection
        )

    def final_detection(self) -> DetectionResult | None:
        """The last round's detection result (the converged verdicts)."""
        for record in reversed(self.rounds):
            if record.detection is not None:
                return record.detection
        return None


def _as_float_list(values) -> list[float]:
    """Materialise a probability/accuracy vector as a plain float list."""
    if hasattr(values, "tolist"):
        return values.tolist()
    return list(values)


def _decision_positions(detector) -> dict[tuple[int, int], int] | None:
    """Per-pair decision positions from a stateful detector's bookkeeping.

    The INCREMENTAL detector keeps a ``_PairRecord`` (with the
    :class:`~repro.core.bound.PairBookkeeping` decision position) per
    opened pair; stateless detectors have none, and the snapshot stores
    -1 for their pairs.
    """
    state = getattr(detector, "state", None)
    pairs = getattr(state, "pairs", None)
    if pairs is None:
        return None
    return {key: record.decision_pos for key, record in pairs.items()}


def run_fusion(
    dataset: Dataset,
    params: CopyParams,
    detector: RoundDetector | None = None,
    config: FusionConfig | None = None,
    workspace: "FusionWorkspace | None" = None,
    fusion_backend: str | None = None,
    snapshot_store: "VerdictStore | Path | str | None" = None,
) -> FusionResult:
    """Run the iterative copy-detection + truth-finding loop to convergence.

    Args:
        dataset: the claims.
        params: model parameters.
        detector: per-round copy detector; ``None`` runs plain ACCU
            (accuracy-aware fusion that ignores copying).
        config: loop configuration.
        workspace: a :class:`~repro.fusion.FusionWorkspace` carrying the
            round-invariant state (shared-item counts, columnar layouts,
            persistent pools, the shared-memory broadcast).  One is
            created — and closed on the way out, detector exceptions
            included — when omitted and needed; pass an open workspace
            to amortise its setup across several fusion runs (the caller
            keeps ownership and closes it).
        fusion_backend: backend for the ACCU/ACCUCOPY updates
            themselves; defaults to ``params.backend``.  ``"numpy"``
            runs the vectorized kernel (:mod:`repro.fusion.accu_kernel`,
            1e-9-equivalent to the reference); ``"python"`` keeps the
            reference loops — e.g. to isolate detection-backend effects
            while fusing bit-identically.
        snapshot_store: a :class:`~repro.serving.VerdictStore` (or a
            store directory path) to publish each round's verdicts +
            fused truths into.  The first round writes a full snapshot;
            later rounds publish deltas sized by what actually changed
            (the INCREMENTAL detector's re-opened/rebuilt pairs, via
            ``DetectionResult.changed_pairs``).  A concurrent
            :class:`~repro.serving.VerdictReader` picks versions up via
            ``refresh()``.

    Returns:
        The converged :class:`FusionResult`.

    Raises:
        ValueError: for an unknown ``fusion_backend`` or
            ``config.fusion_method``, a credibility model or
            uncertainty reserve configured without ``fusion_method ==
            "ds"``, a ``workspace`` built for a different dataset, or
            mis-sized ``config.initial_accuracies``.
    """
    cfg = config or FusionConfig()
    backend = params.backend if fusion_backend is None else fusion_backend
    # Every config check lives up here, before the workspace, the
    # snapshot publisher (whose VerdictStore mkdirs its directory!) or
    # the detector binding exist: an invalid config must raise with
    # zero side effects on the store or the detector.
    if backend not in BACKENDS:
        raise ValueError(
            f"fusion_backend must be one of {BACKENDS}, got {backend!r}"
        )
    if cfg.fusion_method not in FUSION_METHOD_VALUES:
        raise ValueError(
            f"fusion_method must be one of {FUSION_METHOD_VALUES}, "
            f"got {cfg.fusion_method!r}"
        )
    if not 0.0 <= cfg.ds_uncertainty < 1.0:
        raise ValueError(
            f"ds_uncertainty must be in [0, 1), got {cfg.ds_uncertainty!r}"
        )
    if cfg.fusion_method != "ds":
        if cfg.credibility is not None:
            raise ValueError(
                "credibility priors require fusion_method='ds' "
                "(the ACCU softmax has no slot for them)"
            )
        if cfg.ds_uncertainty != 0.0:
            raise ValueError("ds_uncertainty requires fusion_method='ds'")
    if cfg.initial_accuracies is not None and (
        len(cfg.initial_accuracies) != dataset.n_sources
    ):
        raise ValueError(
            "initial_accuracies must have one entry per source "
            f"({len(cfg.initial_accuracies)} != {dataset.n_sources})"
        )
    if workspace is not None and workspace.dataset is not dataset:
        raise ValueError("the workspace was built for a different dataset")
    if workspace is not None and workspace.closed:
        raise ValueError("the workspace is closed")

    owns_workspace = False
    if workspace is None and (
        backend == "numpy"
        or (detector is not None and getattr(detector, "wants_workspace", False))
    ):
        from .workspace import FusionWorkspace

        workspace = FusionWorkspace(dataset, params)
        owns_workspace = True

    # The per-round update step: ``_value_probs`` returns the round's
    # ``(probabilities, conflict-or-None)`` so the DS conflict degrees
    # ride the same code path the ACCU probabilities do.
    cred_model = cfg.credibility

    def _effective_credibility(accs):
        if cred_model is None:
            return None
        return cred_model.effective(dataset.source_names, accs)

    if backend == "numpy":
        from .accu_kernel import (
            update_accuracies_columnar,
            value_probabilities_columnar,
        )

        cols = workspace.fusion_columns

        if cfg.fusion_method == "ds":
            from .ds import ds_value_probabilities_columnar

            def _value_probs(accs, detection=None):
                round_ = ds_value_probabilities_columnar(
                    cols,
                    accs,
                    params,
                    detection=detection,
                    credibility=_effective_credibility(accs),
                    uncertainty=cfg.ds_uncertainty,
                )
                return round_.probabilities, round_.conflict

        else:

            def _value_probs(accs, detection=None):
                return (
                    value_probabilities_columnar(cols, accs, params, detection),
                    None,
                )

        def _update_accs(probs):
            return update_accuracies_columnar(cols, probs, params)

    else:
        if cfg.fusion_method == "ds":
            from .ds import ds_value_probabilities

            def _value_probs(accs, detection=None):
                round_ = ds_value_probabilities(
                    dataset,
                    accs,
                    params,
                    detection=detection,
                    credibility=_effective_credibility(accs),
                    uncertainty=cfg.ds_uncertainty,
                )
                return round_.probabilities, round_.conflict

        else:

            def _value_probs(accs, detection=None):
                return (
                    value_probabilities(
                        dataset, accs, params, detection=detection
                    ),
                    None,
                )

        def _update_accs(probs):
            return update_accuracies(dataset, probs, params)

    publisher = None
    if snapshot_store is not None:
        from ..serving.store import SnapshotPublisher

        publisher = SnapshotPublisher(snapshot_store, dataset)

    detector_bound = (
        detector is not None
        and workspace is not None
        and hasattr(detector, "bind_workspace")
    )
    try:
        if detector_bound:
            detector.bind_workspace(workspace)
        if cfg.initial_accuracies is not None:
            accuracies = [float(a) for a in cfg.initial_accuracies]
        else:
            accuracies = [cfg.initial_accuracy] * dataset.n_sources
        probabilities, _ = _value_probs(accuracies)
        rounds: list[RoundRecord] = []
        converged = False

        for round_no in range(1, cfg.max_rounds + 1):
            detection = None
            detection_seconds = 0.0
            if detector is not None:
                start = time.perf_counter()
                detection = detector.run_round(
                    round_no, dataset, probabilities, accuracies
                )
                detection_seconds = time.perf_counter() - start

            start = time.perf_counter()
            probabilities, conflict = _value_probs(accuracies, detection=detection)
            new_accuracies = _update_accs(probabilities)
            fusion_seconds = time.perf_counter() - start

            change = max(
                (abs(new - old) for new, old in zip(new_accuracies, accuracies)),
                default=0.0,
            )
            accuracies = new_accuracies
            rounds.append(
                RoundRecord(
                    round_no=round_no,
                    detection=detection,
                    accuracy_change=change,
                    detection_seconds=detection_seconds,
                    fusion_seconds=fusion_seconds,
                    conflict=conflict,
                )
            )
            if publisher is not None:
                publisher.publish_round(
                    round_no,
                    detection,
                    probabilities,
                    _decision_positions(detector),
                )
            if round_no >= cfg.min_rounds and change < cfg.tolerance:
                converged = True
                break

        credibility = None
        if cfg.fusion_method == "ds":
            credibility = (cred_model or CredibilityModel.flat()).effective(
                dataset.source_names, accuracies
            )
        return FusionResult(
            probabilities=_as_float_list(probabilities),
            accuracies=_as_float_list(accuracies),
            chosen=choose_values(dataset, probabilities),
            rounds=rounds,
            converged=converged,
            snapshot_ids=list(publisher.snapshot_ids) if publisher else [],
            credibility=credibility,
        )
    finally:
        # Detectors outlive fusion runs; never leave one holding a
        # workspace we are about to close (or that the caller may close).
        if detector_bound:
            detector.bind_workspace(None)
        if owns_workspace:
            workspace.close()
