"""Scaling sweep: how the detection-time gap grows with dataset size.

The paper's headline is that copy detection drops from "one to two orders
of magnitude slower than fusion" to "very little overhead".  PAIRWISE is
quadratic in sources; INDEX touches only co-occurring pairs.  Sweeping the
book profile's scale factor makes the divergence visible directly.

Run:  python examples/scaling_sweep.py
"""

from repro.core import CopyParams
from repro.eval import render_table, run_method
from repro.synth import book_cs


def main() -> None:
    params = CopyParams()
    rows = []
    for scale in (0.1, 0.2, 0.4, 0.8):
        world = book_cs(scale=scale)
        stats = world.dataset.stats()
        pairwise = run_method("pairwise", world.dataset, params)
        indexed = run_method("index", world.dataset, params)
        incremental = run_method("incremental", world.dataset, params)
        rows.append(
            [
                scale,
                stats.n_sources,
                stats.n_claims,
                pairwise.detection_seconds,
                indexed.detection_seconds,
                incremental.detection_seconds,
                pairwise.detection_seconds / max(incremental.detection_seconds, 1e-9),
            ]
        )
        print(f"scale {scale}: done")
    print(render_table(
        "Detection seconds vs dataset scale (book profile)",
        ["scale", "sources", "claims", "pairwise s", "index s", "incremental s", "speedup"],
        rows,
    ))
    print(
        "\nPAIRWISE pays for every pair of sources while the index pays"
        " only for pairs that actually share values, so the gap widens"
        " with source count. Our PAIRWISE is a stronger baseline than the"
        " paper's (it hash-probes the smaller source's claims), so expect"
        " single-digit speedups at laptop scale rather than the paper's"
        " 2-3 orders of magnitude on the full 894-source crawl —"
        " EXPERIMENTS.md discusses the calibration."
    )


if __name__ == "__main__":
    main()
