"""Partitioned copy detection — the paper's Section VIII, runnable.

The conclusions sketch a Hadoop-style parallelisation: distribute index
entries across workers, accumulate partial pair scores, merge.  Because
INDEX's accumulation is a plain sum, the merged verdicts are identical to
the sequential scan for any partitioning — this example demonstrates that
and shows the load balance of the two partitioning strategies.

Run:  python examples/parallel_detection.py
"""

from repro.core import CopyParams, InvertedIndex, detect_index
from repro.eval import render_table
from repro.fusion import vote_probabilities
from repro.parallel import (
    detect_index_parallel,
    partition_entries,
    partition_weights,
)
from repro.synth import stock_1day


def main() -> None:
    world = stock_1day(scale=0.03)
    dataset = world.dataset
    params = CopyParams()
    probabilities = vote_probabilities(dataset)
    accuracies = [0.8] * dataset.n_sources
    index = InvertedIndex.build(dataset, probabilities, accuracies, params)

    # ------------------------------------------------------------------
    # Load balance of the two partitioning strategies.
    # ------------------------------------------------------------------
    rows = []
    for strategy in ("blocks", "stride"):
        parts = partition_entries(index, 4, strategy=strategy)
        weights = [partition_weights(index, p) for p in parts]
        rows.append([strategy] + weights)
    print(render_table(
        "Pair incidences per worker (4 partitions)",
        ["strategy", "w0", "w1", "w2", "w3"],
        rows,
    ))
    print(
        "BY_CONTRIBUTION ordering front-loads strong evidence, so 'blocks'"
        " skews toward whichever workers hold popular values; 'stride'"
        " deals them out evenly."
    )

    # ------------------------------------------------------------------
    # Merge equivalence across partition counts and executors.
    # ------------------------------------------------------------------
    sequential = detect_index(
        dataset, probabilities, accuracies, params, index=index
    )
    rows = []
    for n_partitions in (1, 2, 4, 8):
        parallel = detect_index_parallel(
            dataset,
            probabilities,
            accuracies,
            params,
            n_partitions=n_partitions,
            executor="serial",
            index=index,
        )
        rows.append(
            [
                n_partitions,
                len(parallel.decisions),
                len(parallel.copying_pairs()),
                parallel.copying_pairs() == sequential.copying_pairs(),
            ]
        )
    threaded = detect_index_parallel(
        dataset, probabilities, accuracies, params,
        n_partitions=4, executor="threads", index=index,
    )
    rows.append(
        [
            "4 (threads)",
            len(threaded.decisions),
            len(threaded.copying_pairs()),
            threaded.copying_pairs() == sequential.copying_pairs(),
        ]
    )
    print(render_table(
        "Partitioned INDEX vs sequential",
        ["partitions", "pairs decided", "copying", "verdicts identical"],
        rows,
    ))


if __name__ == "__main__":
    main()
