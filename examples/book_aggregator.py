"""Book-aggregator scenario: sparse sources, copier cliques, sampling.

The paper's Book-CS dataset came from AbeBooks: hundreds of small book
stores, most covering under 1% of the catalogue, several syndicating
(copying) each other's listings — including the mistakes.  This example
generates a world with that shape and shows:

* why naive item sampling destroys copy detection on such data while
  SCALESAMPLE (>= 4 items per source) preserves it;
* how much detection work the inverted index saves when most source
  pairs share nothing;
* that the fused catalogue beats both naive voting and copy-oblivious
  fusion against the planted truth.

Run:  python examples/book_aggregator.py [scale]
"""

import sys

from repro.core import CopyParams
from repro.eval import pair_quality, render_table, run_method
from repro.fusion import run_fusion, vote
from repro.synth import book_cs


def main(scale: float = 0.2) -> None:
    world = book_cs(scale=scale)
    dataset = world.dataset
    stats = dataset.stats()
    params = CopyParams()
    print(
        f"Book world: {stats.n_sources} stores, {stats.n_items} items, "
        f"{stats.n_claims} listings, {stats.n_index_entries} shared values, "
        f"{len(world.copy_pairs)} planted copy edges"
    )

    # ------------------------------------------------------------------
    # Detection cost: exhaustive vs index-driven vs sampled.
    # ------------------------------------------------------------------
    runs = {
        name: run_method(name, dataset, params, seed=7)
        for name in ("pairwise", "index", "incremental", "sample1", "scalesample")
    }
    reference = runs["pairwise"].copying_pairs()
    rows = []
    for name, run in runs.items():
        quality = pair_quality(reference, run.copying_pairs())
        rows.append(
            [
                name,
                run.detection_seconds,
                run.computations,
                len(run.copying_pairs()),
                quality.f_measure,
            ]
        )
    print(render_table(
        "Detection methods (quality measured against PAIRWISE)",
        ["method", "seconds", "computations", "copying pairs", "F"],
        rows,
    ))
    print(
        "Note how plain 10% sampling (sample1) loses the copiers —"
        " most stores keep too few items to accumulate evidence —"
        " while scalesample's per-source floor keeps them."
    )

    # ------------------------------------------------------------------
    # Does copy detection improve the fused catalogue?
    # ------------------------------------------------------------------
    gold = world.gold
    voted = vote(dataset)
    vote_accuracy = gold.accuracy_of(dataset, voted)
    accu_only = run_fusion(dataset, params, detector=None)
    aware = runs["incremental"].fusion
    print(render_table(
        "Fusion accuracy against the planted truth",
        ["fuser", "accuracy"],
        [
            ["naive voting", vote_accuracy],
            ["ACCU (accuracy-aware, copy-oblivious)", gold.accuracy_of(dataset, accu_only.chosen)],
            ["ACCUCOPY + incremental detection", gold.accuracy_of(dataset, aware.chosen)],
        ],
    ))

    # ------------------------------------------------------------------
    # Which copiers were caught?
    # ------------------------------------------------------------------
    planted = world.copy_pair_ids()
    found = runs["incremental"].copying_pairs()
    caught = planted & found
    print(
        f"\nPlanted copy pairs caught: {len(caught)}/{len(planted)} "
        f"(plus {len(found - planted)} transitive/co-copier pairs)"
    )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.2)
