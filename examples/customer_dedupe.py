"""Record linkage with the paper's machinery (intro, last paragraph).

The paper closes its introduction noting that the index-and-prune ideas
transfer to "other applications that require computing similarity by
accumulating weighted evidence; for example, in record linkage different
attributes may have different weights".  ``repro.linkage`` is that
transfer: a Fellegi-Sunter deduplicator that indexes shared values,
processes them rarest-first, and terminates pairs early — the same three
moves as INDEX/BOUND.

This example dedupes a synthetic customer file with planted duplicates
(typos in some attributes, as real dupes have).

Run:  python examples/customer_dedupe.py
"""

import random

from repro.eval import render_table
from repro.linkage import LinkageConfig, link_records

FIRST = ["ada", "grace", "edsger", "alan", "barbara", "donald", "edgar", "tony"]
LAST = ["lovelace", "hopper", "dijkstra", "turing", "liskov", "knuth", "codd", "hoare"]
CITIES = ["london", "nyc", "zurich", "austin"]


def synth_customers(n: int, n_dupes: int, seed: int = 4):
    """Generate a customer table with ``n_dupes`` planted duplicate pairs."""
    rng = random.Random(seed)
    records = []
    for i in range(n):
        records.append(
            {
                "name": f"{rng.choice(FIRST)} {rng.choice(LAST)} {i}",
                "email": f"user{i}@{rng.choice(['mail', 'corp', 'uni'])}.net",
                "phone": f"555-{rng.randrange(10**6):06d}",
                "city": rng.choice(CITIES),
                "zip": f"{rng.randrange(90000):05d}",
            }
        )
    planted = []
    for _ in range(n_dupes):
        source = rng.randrange(len(records))
        dupe = dict(records[source])
        # Real duplicates drift: one attribute gets mangled.
        victim = rng.choice(["phone", "zip", "city"])
        dupe[victim] = dupe[victim] + "x"
        records.append(dupe)
        planted.append((source, len(records) - 1))
    return records, planted


def main() -> None:
    records, planted = synth_customers(n=400, n_dupes=25)
    config = LinkageConfig(m=0.95, match_threshold=4.0, nonmatch_threshold=0.0)
    result = link_records(records, config)

    matches = result.matches()
    planted_set = {(min(a, b), max(a, b)) for a, b in planted}
    hit = len(matches & planted_set)
    print(render_table(
        "Deduplication of 425 customer records",
        ["measure", "value"],
        [
            ["planted duplicate pairs", len(planted_set)],
            ["pairs compared at all", len(result.decisions)],
            ["declared matches", len(matches)],
            ["planted pairs found", hit],
            ["precision", hit / len(matches) if matches else 1.0],
            ["recall", hit / len(planted_set)],
            ["possible (clerical review)", len(result.possibles())],
            ["attribute comparisons", result.comparisons],
            ["pairs concluded early", result.pairs_skipped_early],
        ],
    ))
    all_pairs = len(records) * (len(records) - 1) // 2
    print(
        f"\nOf {all_pairs:,} possible record pairs, only "
        f"{len(result.decisions):,} shared any indexed value — the same"
        " skip-the-rest effect the copy-detection index exploits."
    )


if __name__ == "__main__":
    main()
