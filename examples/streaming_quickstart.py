"""Streaming quickstart: a live feed of claim deltas, verdicts kept fresh.

Drives the in-process streaming stack end to end, no HTTP required:

1. start a :class:`~repro.streaming.StreamingService` over a
   :class:`~repro.streaming.StreamEngine` publishing into a verdict
   store;
2. submit three waves of claims — honest sources first, then a pair of
   copiers cloning source ``S0``, then a correction burst from ``S0``
   itself (debounce collapses it to one delta);
3. watch each wave become a micro-batched epoch (subscriber events),
   query the served verdicts/truths after every epoch;
4. replay the same epoch partitions synchronously with
   :func:`~repro.streaming.replay_epochs` and verify the live run
   matches it exactly — the lockstep-parity guarantee.

Run with::

    PYTHONPATH=src python examples/streaming_quickstart.py

The HTTP/SSE flavour of the same flow is ``repro-copydetect serve``
(see the README's Streaming section).
"""

import asyncio
import random
import tempfile
from pathlib import Path

from repro.data import ClaimDelta, coalesce_deltas
from repro.streaming import StreamEngine, StreamingService, replay_epochs


def make_waves() -> list[list[ClaimDelta]]:
    """Three waves of deltas: honest world, copiers, a correction burst."""
    rng = random.Random(7)
    items = [f"I{i:02d}" for i in range(12)]
    honest: list[ClaimDelta] = []
    s0_claims: dict[str, str] = {}
    for s in range(4):
        for i, item in enumerate(items):
            value = (
                f"true-{i}" if rng.random() < 0.7 else f"wrong-{i}-{rng.randint(0, 1)}"
            )
            honest.append(ClaimDelta(f"S{s}", item, value))
            if s == 0:
                s0_claims[item] = value
    copiers = [
        ClaimDelta(f"C{c}", item, s0_claims[item])
        for c in range(2)
        for item in items
    ]
    # S0 "fixes" one claim three times in quick succession; the
    # micro-batcher's debounce coalesces the burst to its final value.
    burst = [ClaimDelta("S0", "I00", v) for v in ("draft-a", "draft-b", "final")]
    return [honest, copiers, burst]


async def stream(store_dir: Path, waves: list[list[ClaimDelta]]):
    engine = StreamEngine(store=store_dir)
    service = StreamingService(engine, max_delay=0.2, debounce=0.02)
    states = []
    async with service:
        events = service.subscribe()
        for wave in waves:
            service.submit(wave)
            await service.flush()
            event = events.get_nowait()
            print(
                f"epoch {event['epoch']}: {event['changed_claims']} changed "
                f"claims -> snapshot {event['snapshot_id']} "
                f"({event['rounds']} fusion rounds, "
                f"{event['elapsed_seconds'] * 1000:.0f}ms)"
            )
            states.append(service.state)

            # The verdict stays fresh across epochs: once the copiers
            # arrive (epoch 2) the S0-C0 pair is flagged; S0's later
            # correction (epoch 3) breaks the shared-error evidence and
            # the served verdict flips back.
            names = service.state.dataset.source_names
            if "C0" in names:
                s0, c0 = names.index("S0"), names.index("C0")
                verdict = service.get_verdict(s0, c0)
                print(
                    f"  served verdict S0 vs C0: copying={verdict.copying} "
                    f"(snapshot {verdict.snapshot_id})"
                )

        state = service.state
        names = state.dataset.source_names
        s0, c0 = names.index("S0"), names.index("C0")
        truth = service.get_truth("I00")
        print(
            f"served truth of I00: {truth.value_label!r} "
            f"(p={truth.probability:.3f})"
        )
        explanation = service.explain_pair(s0, c0)
        print(
            f"live evidence S0 vs C0: {explanation.n_shared_values} shared "
            f"values, {explanation.n_different} disagreements"
        )
    return states


def main() -> None:
    waves = make_waves()
    with tempfile.TemporaryDirectory(prefix="stream_quickstart_") as tmp:
        states = asyncio.run(stream(Path(tmp) / "verdicts", waves))

    # The parity check: replay the same partitions with no event loop.
    replayed = replay_epochs([coalesce_deltas(w) for w in waves])
    matches = all(
        state.accuracies == tuple(result.fusion.accuracies)
        and state.chosen == result.fusion.chosen
        for state, result in zip(states, replayed)
    )
    print(f"lockstep parity with synchronous replay: {matches}")
    assert matches, "live service diverged from its synchronous replay"


if __name__ == "__main__":
    main()
