"""Why text copy detection fails on structured data (paper Section I).

Classic document copy detection (Manber sketches, Brin chunking,
Schleimer winnowing) keys on *long shared token runs*.  Structured
sources have no natural record order: two sites carrying the same copied
listings emit them in unrelated orders, so shared fragments shatter and
fingerprinting goes blind — while the Bayesian detector, which reasons
per (item, value), is order-immune.

This example serialises a structured world both ways and runs winnowing
and the Bayesian detector head to head.

Run:  python examples/structured_vs_text.py
"""

from repro.core import CopyParams, SingleRoundDetector
from repro.eval import pair_quality, render_table
from repro.fingerprint import (
    serialize_source,
    sketch_containment,
    winnow,
)
from repro.fusion import run_fusion
from repro.synth import GeneratorConfig, generate


def text_detect(dataset, order: str, threshold: float = 0.2):
    """Winnowing-based copy candidates over serialised sources."""
    sketches = [
        winnow(serialize_source(dataset, s, order=order), q=4, window=4)
        for s in range(dataset.n_sources)
    ]
    pairs = set()
    for a in range(dataset.n_sources):
        for b in range(a + 1, dataset.n_sources):
            containment = max(
                sketch_containment(sketches[a], sketches[b]),
                sketch_containment(sketches[b], sketches[a]),
            )
            if containment >= threshold:
                pairs.add((a, b))
    return pairs


def main() -> None:
    world = generate(
        GeneratorConfig(
            n_items=400,
            n_independent_sources=8,
            coverage_range=(0.8, 1.0),
            accuracy_range=(0.6, 0.95),
            n_copier_groups=2,
            copiers_per_group=2,
            copy_selectivity=0.85,
            seed=11,
        )
    )
    dataset = world.dataset
    planted = world.copy_pair_ids()
    params = CopyParams()

    bayes = run_fusion(
        dataset, params, detector=SingleRoundDetector(params, method="hybrid")
    ).final_detection().copying_pairs()

    rows = []
    for name, pairs in (
        ("winnowing, aligned order (unrealistic)", text_detect(dataset, "aligned")),
        ("winnowing, native order (realistic)", text_detect(dataset, "native")),
        ("Bayesian detector (this library)", bayes),
    ):
        quality = pair_quality(planted, pairs)
        rows.append([name, len(pairs), quality.precision, quality.recall])
    print(render_table(
        "Recovering planted copier pairs",
        ["method", "pairs flagged", "precision", "recall"],
        rows,
    ))
    print(
        "\nWith a shared global record order the text pipeline sees the"
        " copies; under each site's own order the shared runs vanish"
        " (Section I: 'there is no natural way to order structured"
        " data'). The value-level Bayesian detector is unaffected."
    )


if __name__ == "__main__":
    main()
