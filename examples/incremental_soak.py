"""INCREMENTAL multi-round fusion soak: numpy backends vs the reference.

The ROADMAP gates flipping the default backend to ``"numpy"`` on soak
evidence: INCREMENTAL's multi-round schedule (HYBRID from scratch in
rounds 1-2, bookkeeping-driven updates after) must reproduce the python
reference on a *realistic* dataset — non-uniform coverage, heterogeneous
accuracies — not just on hypothesis micro-worlds.  This example runs the
full iterative fusion loop on a Book-CS-shaped world (zipf coverage: 85%
of sources cover almost nothing, accuracy spread 0.35-0.85, planted
copier cliques) under three configurations and **asserts** parity:

* ``python`` — the all-reference run.
* ``numpy detect`` — numpy *detection* with the python fusion math
  (``fusion_backend="python"``).  The epoch-batched bound scans are
  bit-identical by contract, so this run must match the reference with
  **zero** drift: identical round count, per-round copying pairs, fused
  truths, and final accuracies equal to 1e-12.
* ``numpy`` — the full columnar fusion backend (vectorized ACCU/ACCUCOPY
  + numpy detection, driven through a round-persistent
  ``FusionWorkspace``).  The fusion kernel re-associates float sums, so
  this run must match to the kernel contract instead: identical rounds,
  verdicts and fused truths, probabilities/accuracies within 1e-9.

Run:  python examples/incremental_soak.py [scale]

(scale defaults to 0.15 — 134 sources; the test suite runs 0.08.)
"""

import sys

from repro.core import CopyParams, IncrementalDetector
from repro.eval import render_table
from repro.fusion import FusionConfig, run_fusion
from repro.synth import book_cs


def run_backend(dataset, backend: str, fusion_backend: str | None = None):
    params = CopyParams(backend=backend)
    detector = IncrementalDetector(params)
    return run_fusion(
        dataset,
        params,
        detector=detector,
        config=FusionConfig(max_rounds=10),
        fusion_backend=fusion_backend,
    )


def assert_parity(reference, soaked, label: str, accuracy_tolerance: float):
    """Round/verdict/truth identity plus bounded accuracy drift."""
    assert soaked.n_rounds == reference.n_rounds, (
        f"{label}: round count diverged: "
        f"{soaked.n_rounds} != {reference.n_rounds}"
    )
    assert soaked.converged == reference.converged, f"{label}: convergence"
    for ref_round, soak_round in zip(reference.rounds, soaked.rounds):
        ref_pairs = (
            ref_round.detection.copying_pairs() if ref_round.detection else set()
        )
        soak_pairs = (
            soak_round.detection.copying_pairs() if soak_round.detection else set()
        )
        assert soak_pairs == ref_pairs, (
            f"{label}: round {ref_round.round_no}: copying pairs diverged"
        )
    assert soaked.chosen == reference.chosen, f"{label}: fused truths diverged"
    max_drift = max(
        abs(a - b) for a, b in zip(soaked.accuracies, reference.accuracies)
    )
    assert max_drift <= accuracy_tolerance, (
        f"{label}: accuracy drift {max_drift} exceeds {accuracy_tolerance}"
    )
    return max_drift


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.15
    world = book_cs(scale=scale)
    dataset = world.dataset
    stats = dataset.stats()
    print(
        f"book_cs @ scale={scale}: {stats.n_sources} sources, "
        f"{stats.n_items} items, {stats.n_index_entries} index entries, "
        f"planted copier pairs: {sorted(world.copy_pairs)}"
    )

    reference = run_backend(dataset, "python")
    detect_only = run_backend(dataset, "numpy", fusion_backend="python")
    full_numpy = run_backend(dataset, "numpy")

    # ------------------------------------------------------------------
    # Parity assertions — the point of the soak.
    # ------------------------------------------------------------------
    detect_drift = assert_parity(
        reference, detect_only, "numpy detect", accuracy_tolerance=1e-12
    )
    fusion_drift = assert_parity(
        reference, full_numpy, "numpy fusion", accuracy_tolerance=1e-9
    )

    # ------------------------------------------------------------------
    # Report.
    # ------------------------------------------------------------------
    rows = []
    for backend, result in (
        ("python", reference),
        ("numpy detect", detect_only),
        ("numpy", full_numpy),
    ):
        detection = result.final_detection()
        rows.append(
            [
                backend,
                result.n_rounds,
                result.converged,
                len(detection.copying_pairs()) if detection else 0,
                f"{result.detection_seconds:.3f}s",
                f"{result.total_computations:,}",
            ]
        )
    print(
        render_table(
            "INCREMENTAL fusion: backend soak",
            ["backend", "rounds", "converged", "copying", "detect time", "computations"],
            rows,
        )
    )
    gold_accuracy = world.gold.accuracy_of(dataset, reference.chosen)
    print(f"fusion accuracy vs gold: {gold_accuracy:.3f}")
    print(
        f"parity: rounds/verdicts/truths identical; accuracy drift "
        f"{detect_drift:.1e} (numpy detect, <= 1e-12), "
        f"{fusion_drift:.1e} (numpy fusion, <= 1e-9)"
    )


if __name__ == "__main__":
    main()
