"""Stock-feed scenario: a dense source panel and early termination.

The paper's stock datasets are 55 Deep-Web sources each quoting most of
16,000 stock-day attributes — the *dense* regime, where every source pair
shares thousands of items and the win comes from terminating pairs early
(BOUND/BOUND+) and from patching decisions across fusion rounds
(INCREMENTAL) instead of re-deciding from scratch.

This example generates a stock-shaped panel and reports:

* how many pairs each algorithm concludes early and how many shared
  values it needed to examine;
* the per-round cost of INCREMENTAL vs re-running HYBRID, plus its
  pass-termination profile (the paper's Table VIII);
* the directed copy probabilities for the planted feed copiers.

Run:  python examples/stock_feeds.py [scale]
"""

import sys

from repro.core import (
    CopyParams,
    IncrementalDetector,
    SingleRoundDetector,
    detect_bound_plus,
    detect_index,
)
from repro.eval import render_table
from repro.fusion import FusionConfig, run_fusion, vote_probabilities
from repro.synth import stock_1day


def main(scale: float = 0.03) -> None:
    world = stock_1day(scale=scale)
    dataset = world.dataset
    params = CopyParams()
    stats = dataset.stats()
    print(
        f"Stock panel: {stats.n_sources} feeds x {stats.n_items} quote items, "
        f"{stats.n_claims} quotes, {stats.avg_conflicts_per_item:.1f} "
        f"conflicting values per item"
    )

    # ------------------------------------------------------------------
    # Early termination on a single round.
    # ------------------------------------------------------------------
    probabilities = vote_probabilities(dataset)
    accuracies = [0.8] * dataset.n_sources
    index_run = detect_index(dataset, probabilities, accuracies, params)
    bound_run = detect_bound_plus(dataset, probabilities, accuracies, params)
    early = sum(1 for d in bound_run.decisions.values() if d.early)
    print(render_table(
        "Single round: INDEX vs BOUND+",
        ["method", "values examined", "computations", "early conclusions"],
        [
            ["index", index_run.cost.values_examined, index_run.cost.computations, 0],
            ["bound+", bound_run.cost.values_examined, bound_run.cost.computations, early],
        ],
    ))

    # ------------------------------------------------------------------
    # Iterative detection: HYBRID every round vs INCREMENTAL.
    # ------------------------------------------------------------------
    config = FusionConfig(max_rounds=8)
    hybrid_loop = run_fusion(
        dataset,
        params,
        detector=SingleRoundDetector(params, method="hybrid"),
        config=config,
    )
    detector = IncrementalDetector(params)
    incremental_loop = run_fusion(dataset, params, detector=detector, config=config)
    rows = []
    hybrid_rounds = {r.round_no: r for r in hybrid_loop.rounds}
    for record in incremental_loop.rounds:
        hybrid_record = hybrid_rounds.get(record.round_no)
        rows.append(
            [
                record.round_no,
                record.detection.method,
                record.detection_seconds,
                hybrid_record.detection_seconds if hybrid_record else float("nan"),
            ]
        )
    print(render_table(
        "Per-round detection seconds",
        ["round", "incremental method", "incremental s", "hybrid s"],
        rows,
    ))
    if detector.state is not None:
        rows = [
            [
                round_no + 3,
                s.done_pass1,
                s.done_pass2,
                s.done_pass3,
                s.entries_big,
                s.entries_small,
            ]
            for round_no, s in enumerate(detector.state.history)
        ]
        print(render_table(
            "INCREMENTAL pass profile (Table VIII)",
            ["round", "pass1", "pass2", "pass3", "big entries", "small entries"],
            rows,
        ))

    # ------------------------------------------------------------------
    # Who copies whom?
    # ------------------------------------------------------------------
    final = incremental_loop.final_detection()
    print("\nDirected verdicts for planted copier edges:")
    names = dataset.source_names
    ids = {name: i for i, name in enumerate(names)}
    for copier, original in sorted(world.copy_pairs):
        p = final.copy_probability(ids[copier], ids[original])
        q = final.copy_probability(ids[original], ids[copier])
        print(
            f"  {copier} -> {original}: Pr(copier->original) = {p:.3f}, "
            f"reverse = {q:.3f}"
        )


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.03)
