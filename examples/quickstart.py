"""Quickstart: the paper's motivating example, end to end.

Ten sources list US state capitals (Table I of the paper).  Sources S2-S4
copy from each other, as do S6-S8; both groups spread false values.  This
script walks the full pipeline:

1. inspect the inverted index (Table III),
2. detect copying with PAIRWISE and with the scalable INDEX algorithm,
3. run the iterative truth-finding loop and recover the true capitals.

Run:  python examples/quickstart.py
"""

from repro.core import (
    CopyParams,
    InvertedIndex,
    SingleRoundDetector,
    detect_index,
    detect_pairwise,
)
from repro.data import (
    motivating_accuracies,
    motivating_example,
    motivating_gold,
    motivating_value_probabilities,
)
from repro.eval import render_table
from repro.fusion import run_fusion


def main() -> None:
    dataset = motivating_example()
    params = CopyParams()  # alpha=.1, s=.8, n=50 — the paper's setting
    accuracies = motivating_accuracies(dataset)
    probabilities = motivating_value_probabilities(dataset)

    # ------------------------------------------------------------------
    # 1. The inverted index (Table III): one scored entry per shared value.
    # ------------------------------------------------------------------
    index = InvertedIndex.build(dataset, probabilities, accuracies, params)
    rows = []
    for position, entry in enumerate(index.entries):
        rows.append(
            [
                f"{dataset.item_names[entry.item_id]}."
                f"{dataset.value_label[entry.value_id]}",
                entry.probability,
                entry.score,
                ",".join(dataset.source_names[s] for s in entry.providers),
                "tail" if position >= index.tail_start else "",
            ]
        )
    print(render_table(
        "Inverted index (Table III)",
        ["value", "Pr", "score", "providers", ""],
        rows,
    ))

    # ------------------------------------------------------------------
    # 2. Copy detection: exhaustive vs index-driven.
    # ------------------------------------------------------------------
    pairwise = detect_pairwise(dataset, probabilities, accuracies, params)
    indexed = detect_index(dataset, probabilities, accuracies, params)
    print(
        f"\nPAIRWISE: {pairwise.cost.computations} computations over "
        f"{pairwise.cost.pairs_considered} pairs"
    )
    print(
        f"INDEX:    {indexed.cost.computations} computations over "
        f"{indexed.cost.pairs_considered} pairs (same verdicts: "
        f"{indexed.copying_pairs() == pairwise.copying_pairs()})"
    )
    print("\nDetected copying:")
    for s1, s2 in sorted(indexed.copying_pairs()):
        decision = indexed.decision_for(s1, s2)
        print(
            f"  {dataset.source_names[s1]} <-> {dataset.source_names[s2]}"
            f"  Pr(independent) = {decision.posterior.independent:.4f}"
        )

    # ------------------------------------------------------------------
    # 3. Iterative truth finding (Table II): accuracies and truths emerge.
    # ------------------------------------------------------------------
    detector = SingleRoundDetector(params, method="hybrid")
    fusion = run_fusion(dataset, params, detector=detector)
    gold = motivating_gold()
    print(
        f"\nFusion converged in {fusion.n_rounds} rounds; "
        f"accuracy vs gold = {gold.accuracy_of(dataset, fusion.chosen):.2f}"
    )
    rows = [
        [dataset.item_names[item], dataset.value_label[value]]
        for item, value in sorted(fusion.chosen.items())
    ]
    print(render_table("Fused truths", ["state", "capital"], rows))
    rows = [
        [name, acc]
        for name, acc in zip(dataset.source_names, fusion.accuracies)
    ]
    print(render_table("Learned source accuracies", ["source", "accuracy"], rows))


if __name__ == "__main__":
    main()
